"""The pending transaction pool.

Selection follows geth's miner: the highest gas price among *ready*
transactions wins (Algorithm 1 pops from a heap).  A transaction is ready
when it is the lowest queued nonce for its sender — later nonces stay
parked until the earlier one is packed, which preserves the per-sender
ordering the EVM's nonce check enforces.

The pool supports the OCC-WSI abort path: ``push_back`` returns an aborted
transaction to the ready set without disturbing its parked successors.

Hot-path index layer
--------------------

The proposer's wake loop calls :meth:`has_ready` on every free lane and
fork cleanup calls :meth:`contains`/:meth:`restore` per transaction, so
both must be cheap on long-lived pools.  The pool therefore maintains,
alongside the heap:

* ``_index`` — hash → transaction for everything queued or in flight,
  making :meth:`contains` (and the :meth:`restore` duplicate check) O(1);
* ``_live_ready`` — a count of non-cancelled heap entries, making
  :meth:`has_ready` O(1) instead of a heap scan per proposer wake;
* ``_ready_entry`` — sender → its live heap entry, making replace-by-fee
  of a promoted transaction O(log n) (one heap push) instead of O(n);
* lazy-cancelled **compaction** — replaced-by-fee heap entries are
  invalidated lazily, and once they outnumber half the heap the pool
  rebuilds it in one pass so cancelled garbage never dominates.

Every index structure is derivable from the heap + parked + in-flight
maps; :meth:`check_invariants` re-derives and asserts that equivalence
(the randomized interleaving tests call it after every operation).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional

from repro.common.types import Address
from repro.txpool.transaction import Transaction

__all__ = ["TxPool"]


#: a replacement must bid at least this many percent over the original
#: (geth's default price-bump threshold)
PRICE_BUMP_PERCENT = 10


class TxPool:
    """Gas-price priority pool with per-sender nonce ordering.

    Replace-by-fee: re-adding a queued nonce with a gas price **at or
    above** ``old + old * PRICE_BUMP_PERCENT // 100`` (geth semantics: the
    bump threshold itself is an acceptable bid) replaces the original —
    both parked and already-promoted transactions; in-flight ones —
    currently executing in a proposer — cannot be replaced.

    ``metrics`` is an optional :class:`repro.obs.metrics.MetricsRegistry`;
    when present the pool counts heap compactions and RBF replacements.
    """

    def __init__(self, metrics=None) -> None:
        # ready transactions: max-heap on gas price (min-heap on negation)
        self._ready: List[tuple] = []
        self._counter = itertools.count()
        # parked: sender -> {nonce: tx} not yet ready
        self._parked: Dict[Address, Dict[int, Transaction]] = {}
        # the nonce each sender's next ready tx must carry
        self._ready_nonce: Dict[Address, int] = {}
        # ready txs currently popped but not yet packed (in flight)
        self._in_flight: Dict[Address, Transaction] = {}
        # senders whose ready-nonce tx is in the heap or in flight
        self._pending_ready: set = set()
        # lazily-invalidated heap entries (replaced by fee)
        self._cancelled: set = set()
        self._size = 0
        # ---- hot-path index layer (see module docstring) -------------- #
        # hash -> tx for everything queued (parked, ready, in flight)
        self._index: Dict[bytes, Transaction] = {}
        # count of heap entries not in _cancelled
        self._live_ready = 0
        # sender -> its live (non-cancelled, non-in-flight) heap entry
        self._ready_entry: Dict[Address, Transaction] = {}
        #: heap rebuilds triggered by cancelled-entry pressure
        self.compactions = 0
        self.metrics = metrics

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------ #

    def add(self, tx: Transaction) -> None:
        """Insert a transaction.

        Duplicates of a queued nonce are rejected unless they meet the
        :data:`PRICE_BUMP_PERCENT` threshold (replace-by-fee).
        """
        sender = tx.sender
        parked = self._parked.setdefault(sender, {})
        if tx.nonce in parked:
            self._replace_parked(parked, tx)
            return
        if sender in self._ready_nonce:
            ready = self._ready_nonce[sender]
            if tx.nonce < ready:
                # the sender's earlier nonce already left the parked map (it
                # is ready, in flight or packed); a lower nonce cannot run
                raise ValueError(
                    f"nonce {tx.nonce} below ready nonce "
                    f"{ready} for {sender.hex()[:8]}"
                )
            if tx.nonce == ready and sender in self._pending_ready:
                self._replace_promoted(tx)
                return
        parked[tx.nonce] = tx
        self._index[tx.hash] = tx
        self._size += 1
        if sender not in self._ready_nonce:
            self._ready_nonce[sender] = min(parked)
        self._promote(sender)

    def _check_bump(self, old: Transaction, new: Transaction) -> None:
        """Reject a replacement bidding below the price-bump threshold.

        geth semantics: a bid *at* ``old + old * PRICE_BUMP_PERCENT // 100``
        is sufficient (at-or-above, not strictly above), but the price must
        still strictly exceed the original (relevant when the integer bump
        rounds to zero for tiny prices).
        """
        threshold = old.gas_price + old.gas_price * PRICE_BUMP_PERCENT // 100
        if new.gas_price < threshold or new.gas_price <= old.gas_price:
            raise ValueError(
                f"replacement for nonce {new.nonce} underpriced: "
                f"{new.gas_price} < bump threshold {threshold}"
            )

    def _replace_parked(self, parked, tx: Transaction) -> None:
        old = parked[tx.nonce]
        self._check_bump(old, tx)
        del self._index[old.hash]
        parked[tx.nonce] = tx
        self._index[tx.hash] = tx
        if self.metrics is not None:
            self.metrics.counter("txpool.replacements").inc()

    def _replace_promoted(self, tx: Transaction) -> None:
        sender = tx.sender
        in_flight = self._in_flight.get(sender)
        if in_flight is not None:
            raise ValueError(
                f"nonce {tx.nonce} for {sender.hex()[:8]} is executing and "
                "cannot be replaced"
            )
        # the sender's live heap entry, O(1) via the ready-entry index
        old = self._ready_entry.get(sender)
        if old is None:  # pragma: no cover - defensive
            raise ValueError("promoted transaction not found")
        self._check_bump(old, tx)
        self._cancelled.add(old.hash)
        self._live_ready -= 1
        del self._index[old.hash]
        heapq.heappush(self._ready, (-tx.gas_price, next(self._counter), tx))
        self._live_ready += 1
        self._ready_entry[sender] = tx
        self._index[tx.hash] = tx
        if self.metrics is not None:
            self.metrics.counter("txpool.replacements").inc()
        self._maybe_compact()

    def add_many(self, txs) -> None:
        for tx in txs:
            self.add(tx)

    def _promote(self, sender: Address) -> None:
        """Move the sender's ready-nonce tx into the heap if present."""
        if sender in self._in_flight:
            return
        parked = self._parked.get(sender)
        if not parked:
            return
        nonce = self._ready_nonce.get(sender)
        if nonce is None:
            return
        tx = parked.get(nonce)
        if tx is not None:
            heapq.heappush(
                self._ready, (-tx.gas_price, next(self._counter), tx)
            )
            self._live_ready += 1
            self._ready_entry[sender] = tx
            del parked[nonce]
            self._pending_ready.add(sender)

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries exceed half of it.

        Lazy invalidation is O(1) per replacement but leaves tombstones in
        the heap; on long-lived pools with heavy RBF churn they would
        otherwise linger until incidentally popped, inflating every heap
        operation.  One O(n) rebuild amortised over n/2 cancellations keeps
        the heap at least half live.
        """
        if not self._cancelled or len(self._cancelled) * 2 <= len(self._ready):
            return
        cancelled = self._cancelled
        self._ready = [e for e in self._ready if e[2].hash not in cancelled]
        heapq.heapify(self._ready)
        self._cancelled = set()
        self.compactions += 1
        if self.metrics is not None:
            self.metrics.counter("txpool.compactions").inc()

    # ------------------------------------------------------------------ #

    def pop_best(self) -> Optional[Transaction]:
        """Pop the ready transaction with the highest gas price.

        The transaction becomes *in flight*: its sender's later nonces stay
        parked until ``mark_packed`` or ``drop`` is called; ``push_back``
        restores it to the ready set.
        """
        while self._ready:
            _, _, tx = heapq.heappop(self._ready)
            if tx.hash in self._cancelled:
                self._cancelled.discard(tx.hash)
                continue
            sender = tx.sender
            if self._in_flight.get(sender) is not None:  # pragma: no cover
                # stale duplicate (defensive; should not occur)
                self._live_ready -= 1
                if self._ready_entry.get(sender) is tx:
                    del self._ready_entry[sender]
                self._index.pop(tx.hash, None)
                continue
            self._live_ready -= 1
            if self._ready_entry.get(sender) is tx:
                del self._ready_entry[sender]
            self._in_flight[sender] = tx
            # popping shrinks the heap, so the cancelled ratio can cross
            # the compaction bound here as well as on replace-by-fee
            self._maybe_compact()
            return tx
        return None

    def push_back(self, tx: Transaction) -> None:
        """Return an in-flight (aborted) transaction to the ready heap."""
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("push_back of a transaction that is not in flight")
        del self._in_flight[sender]
        heapq.heappush(self._ready, (-tx.gas_price, next(self._counter), tx))
        self._live_ready += 1
        self._ready_entry[sender] = tx

    def mark_packed(self, tx: Transaction) -> None:
        """The in-flight transaction was committed; release the next nonce."""
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("mark_packed of a transaction that is not in flight")
        del self._in_flight[sender]
        self._pending_ready.discard(sender)
        self._size -= 1
        self._index.pop(tx.hash, None)
        self._ready_nonce[sender] = tx.nonce + 1
        self._promote(sender)

    def drop(self, tx: Transaction) -> None:
        """Discard an in-flight transaction (invalid: bad nonce, unaffordable).

        Every parked successor from the same sender is discarded too — with
        a nonce gap they can never become valid.
        """
        sender = tx.sender
        if self._in_flight.get(sender) is not tx:
            raise ValueError("drop of a transaction that is not in flight")
        del self._in_flight[sender]
        self._pending_ready.discard(sender)
        self._size -= 1
        self._index.pop(tx.hash, None)
        parked = self._parked.pop(sender, {})
        for successor in parked.values():
            self._index.pop(successor.hash, None)
        self._size -= len(parked)
        self._ready_nonce.pop(sender, None)

    # ------------------------------------------------------------------ #

    def contains(self, tx_hash) -> bool:
        """Whether a transaction with this hash is queued or in flight.

        O(1): served from the hash index, which never carries cancelled
        (replaced-by-fee) entries.
        """
        return tx_hash in self._index

    def restore(self, tx: Transaction) -> bool:
        """Return a transaction from a rejected/abandoned block to the pool.

        Exactly-once semantics: a transaction already queued or in flight
        (e.g. the same tx carried by two fork siblings), already packed
        (its sender's nonce moved past it), or unable to re-enter (stale
        nonce, underpriced duplicate) is skipped.  Returns whether the
        transaction was actually re-added.
        """
        if self.contains(tx.hash):
            return False
        ready = self._ready_nonce.get(tx.sender)
        if ready is not None and tx.nonce < ready:
            return False  # a block carrying this nonce already committed
        try:
            self.add(tx)
        except ValueError:
            return False
        return True

    def restore_many(self, txs) -> int:
        """Restore a batch; returns how many actually re-entered the pool."""
        return sum(1 for tx in txs if self.restore(tx))

    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def has_ready(self) -> bool:
        """True when ``pop_best`` would return a transaction right now.

        O(1): the live-entry counter tracks heap pushes, pops and lazy
        cancellations exactly (the proposer calls this per lane wake, so a
        heap scan here made block packing O(pool²)).
        """
        return self._live_ready > 0

    # ------------------------------------------------------------------ #

    def check_invariants(self) -> None:
        """Re-derive every index structure and assert it matches (tests).

        O(n) by design — this is the specification the O(1) hot paths are
        checked against, not something production code should call.
        """
        live = [t for _, _, t in self._ready if t.hash not in self._cancelled]
        assert self._live_ready == len(live), (
            f"live counter {self._live_ready} != {len(live)} live heap entries"
        )
        assert self.has_ready() == bool(live)
        expected_index = {t.hash: t for t in live}
        expected_index.update((t.hash, t) for t in self._in_flight.values())
        for parked in self._parked.values():
            expected_index.update((t.hash, t) for t in parked.values())
        assert self._index == expected_index, "hash index out of sync"
        for cancelled_hash in self._cancelled:
            assert cancelled_hash not in self._index, (
                "cancelled entry visible through the index"
            )
        assert len(self._cancelled) * 2 <= max(len(self._ready), 1) or not live, (
            "cancelled entries exceed half the heap without compaction"
        )
        assert self._size == len(expected_index)
        for sender, entry in self._ready_entry.items():
            assert entry in live and entry.sender == sender
        live_senders = {t.sender for t in live}
        assert set(self._ready_entry) == live_senders
