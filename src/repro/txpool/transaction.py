"""The transaction record.

Real Ethereum transactions carry an ECDSA signature from which the sender
is recovered.  Signature recovery is pure per-transaction compute with no
bearing on concurrency control, so this reproduction carries the sender
explicitly and folds signature-check cost into the cost model's
``tx_overhead`` (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.hashing import Hash32, hash_of
from repro.common.types import Address

__all__ = ["Transaction"]


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction.

    ``to=None`` denotes contract creation with ``data`` as init code.
    ``tag`` is free-form metadata used by the workload generator to label
    what kind of action a transaction performs (useful in analyses); it is
    not part of the hash.
    """

    sender: Address
    to: Optional[Address]
    value: int
    data: bytes
    gas_limit: int
    gas_price: int
    nonce: int
    tag: str = field(default="", compare=False)
    _hash: Optional[Hash32] = field(
        default=None, compare=False, repr=False, init=False
    )

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("negative value")
        if self.gas_limit <= 0:
            raise ValueError("non-positive gas limit")
        if self.gas_price < 0:
            raise ValueError("negative gas price")
        if self.nonce < 0:
            raise ValueError("negative nonce")

    @property
    def hash(self) -> Hash32:
        # Memoized: the pool's hash index and the proposer consult the hash
        # on every queue operation, and all hash inputs are frozen.
        cached = self._hash
        if cached is None:
            cached = hash_of(
                bytes(self.sender),
                bytes(self.to) if self.to is not None else None,
                self.value,
                self.data,
                self.gas_limit,
                self.gas_price,
                self.nonce,
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def is_create(self) -> bool:
        return self.to is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "create" if self.is_create else self.to.hex()[:8]
        return (
            f"Tx({self.sender.hex()[:8]}->{kind} nonce={self.nonce} "
            f"gasprice={self.gas_price}{' ' + self.tag if self.tag else ''})"
        )
