"""Mainnet-calibrated synthetic workloads.

The paper evaluates on real Ethereum blocks (100k blocks from height 10M,
averaging 132 transactions per block, §5.1) whose parallelism is limited
by hotspot contracts — DeFi pools, NFT mints and token distributions whose
storage and counters serialise large transaction subsets (§5.5: the
largest dependency subgraph averages 27.5% of a block).

Offline, this package generates blocks with the same *conflict structure*:

* :mod:`repro.workload.contracts` -- real bytecode for the hotspot
  contract families (ERC-20 token, constant-product AMM, NFT mint with a
  shared counter, airdrop distributor), written in the repo's assembler;
* :mod:`repro.workload.universe` -- genesis construction: funded EOAs and
  pre-deployed contracts with populated storage;
* :mod:`repro.workload.generator` -- per-block transaction sampling with
  Zipf-skewed account popularity and a tunable ``hotspot_intensity`` knob
  that reproduces (and sweeps) the paper's subgraph-ratio distribution;
* :mod:`repro.workload.scenarios` -- named parameterisations (the default
  mainnet-like mix, payment-heavy early-era blocks, the hotspot sweep
  used by the Fig. 8 benchmark) plus the scenario *stream* engine:
  conflict-taming counter variants, burst-arrival models, MEV bundle
  chains, a streaming long-tail generator and a day-in-the-life replay,
  all behind one registry (``get_scenario``).
"""

from repro.workload.contracts import (
    erc20_code,
    amm_code,
    nft_code,
    airdrop_code,
    erc20_transfer_calldata,
    erc20_mint_calldata,
    erc20_balance_slot,
    amm_swap_calldata,
    nft_mint_calldata,
    airdrop_claim_calldata,
)
from repro.workload.universe import Universe, UniverseConfig, build_universe
from repro.workload.generator import (
    WorkloadConfig,
    BlockWorkloadGenerator,
)
from repro.workload.traces import (
    dump_trace,
    load_trace,
    save_trace_file,
    load_trace_file,
    TraceError,
)
from repro.workload.scenarios import (
    SCENARIOS,
    mainnet_scenario,
    payment_heavy_scenario,
    hotspot_scenario,
    era_profile,
    ScenarioStream,
    ScenarioSpec,
    SCENARIO_REGISTRY,
    get_scenario,
    scenario_names,
    tx_fingerprint,
)

__all__ = [
    "erc20_code",
    "amm_code",
    "nft_code",
    "airdrop_code",
    "erc20_transfer_calldata",
    "erc20_mint_calldata",
    "erc20_balance_slot",
    "amm_swap_calldata",
    "nft_mint_calldata",
    "airdrop_claim_calldata",
    "Universe",
    "UniverseConfig",
    "build_universe",
    "WorkloadConfig",
    "BlockWorkloadGenerator",
    "SCENARIOS",
    "mainnet_scenario",
    "payment_heavy_scenario",
    "hotspot_scenario",
    "era_profile",
    "ScenarioStream",
    "ScenarioSpec",
    "SCENARIO_REGISTRY",
    "get_scenario",
    "scenario_names",
    "tx_fingerprint",
    "dump_trace",
    "load_trace",
    "save_trace_file",
    "load_trace_file",
    "TraceError",
]
