"""Hotspot contract bytecode (ERC-20, AMM, NFT, airdrop) and calldata ABIs.

These four families cover the conflict patterns Garamvölgyi et al. and the
paper identify (§2.3, §5.5):

* **ERC-20 transfer** — storage conflicts only between transactions that
  share a holder; a *popular token* becomes a soft hotspot through shared
  recipients.
* **AMM swap** — every swap reads and writes the pool's reserve slots:
  all swaps of one pool form a single serial chain (the Uniswap effect).
* **NFT mint** — a shared ``next_id`` counter serialises all mints of a
  collection (token-distribution pattern).
* **Airdrop claim** — a shared remaining-supply counter plus per-user
  claimed flags: the §2.3 "counter" conflict in its purest form.

Two further ERC-20 variants isolate the *semantic conflict reduction*
result of Garamvölgyi et al. ("Taming Application-Inherent Conflicts"):
both count transfers, but the **shared-counter** variant read-modify-writes
one global slot (every transfer of the token conflicts with every other),
while the **partitioned-counter** variant bumps one of ``N`` shard slots
selected by the caller (commutative increments land on disjoint keys, so
only same-shard transfers conflict).  The two runtimes accept identical
calldata, so the same sampled traffic can be replayed against either
variant and the conflict-graph delta is purely the counter layout.

ABI convention: the first 4 bytes of calldata carry the selector; each
argument is a 32-byte big-endian word starting at offset 4.  Mapping slots
follow Solidity: ``keccak(key_word ++ slot_word)``.
"""

from __future__ import annotations

from repro.common.hashing import keccak
from repro.common.types import Address
from repro.evm.asm import Assembler

__all__ = [
    "deploy_initcode",
    "SEL_TRANSFER",
    "SEL_MINT",
    "SEL_SWAP",
    "SEL_NFT_MINT",
    "SEL_CLAIM",
    "erc20_code",
    "erc20_shared_counter_code",
    "erc20_partitioned_counter_code",
    "amm_code",
    "nft_code",
    "airdrop_code",
    "erc20_transfer_calldata",
    "erc20_counted_transfer_calldata",
    "erc20_mint_calldata",
    "amm_swap_calldata",
    "nft_mint_calldata",
    "airdrop_claim_calldata",
    "erc20_balance_slot",
    "erc20_shard_counter_slot",
    "nft_owner_slot",
    "airdrop_claimed_slot",
    "mapping_slot",
]

# selectors (one byte is plenty; stored in the conventional 4-byte field)
SEL_TRANSFER = 1
SEL_MINT = 2
SEL_SWAP = 3
SEL_NFT_MINT = 4
SEL_CLAIM = 5

# storage layout constants
ERC20_BALANCES_SLOT = 0
#: shared variant: the raw slot of the global transfer counter;
#: partitioned variant: the mapping base slot of the per-shard counters
ERC20_COUNTER_SLOT = 1
AMM_RESERVE0_SLOT = 0
AMM_RESERVE1_SLOT = 1
NFT_NEXT_ID_SLOT = 0
NFT_OWNERS_SLOT = 1
AIRDROP_REMAINING_SLOT = 0
AIRDROP_CLAIMED_SLOT = 1
AIRDROP_AMOUNT = 1000


def deploy_initcode(runtime: bytes) -> bytes:
    """Constructor wrapper: CODECOPY the runtime blob to memory, RETURN it.

    The 13-byte header layout is fixed so the runtime offset is static:
    PUSH2 size | DUP1 | PUSH2 off | PUSH1 0 | CODECOPY | PUSH1 0 | RETURN.
    """
    header_len = 13
    a = Assembler()
    a.push(len(runtime), width=2)
    a.op("DUP1")
    a.push(header_len, width=2)
    a.push(0)
    a.op("CODECOPY")
    a.push(0)
    a.op("RETURN")
    a.raw(runtime)
    return a.assemble()


def mapping_slot(key: int, slot: int) -> int:
    """Solidity mapping storage slot: keccak(key_word ++ slot_word)."""
    data = key.to_bytes(32, "big") + slot.to_bytes(32, "big")
    return int.from_bytes(keccak(data), "big")


def erc20_balance_slot(holder: Address) -> int:
    return mapping_slot(holder.to_int(), ERC20_BALANCES_SLOT)


def erc20_shard_counter_slot(shard: int) -> int:
    """Per-shard transfer-count slot of the partitioned-counter variant."""
    return mapping_slot(shard, ERC20_COUNTER_SLOT)


def nft_owner_slot(token_id: int) -> int:
    return mapping_slot(token_id, NFT_OWNERS_SLOT)


def airdrop_claimed_slot(claimer: Address) -> int:
    return mapping_slot(claimer.to_int(), AIRDROP_CLAIMED_SLOT)


# --------------------------------------------------------------------- #
# assembly helpers                                                      #
# --------------------------------------------------------------------- #


def _emit_selector_dispatch(a: Assembler, routes: list) -> None:
    """Selector word -> label dispatch; unknown selectors revert.

    Leaves the selector on the stack for each route (routes must POP it).
    """
    a.push(0).op("CALLDATALOAD")
    a.push(224).op("SHR")  # [selector]
    for selector, label in routes:
        a.op("DUP1").push(selector).op("EQ").jumpi_to(label)
    _emit_revert(a)


def _emit_revert(a: Assembler) -> None:
    a.push(0).push(0).op("REVERT")  # size, offset (offset on top)


def _emit_mapping_key(a: Assembler, slot: int) -> None:
    """[key_word] -> [storage_key]  via keccak(mem[0:64))."""
    a.push(0).op("MSTORE")  # mem[0:32) = key_word
    a.push(slot).push(32).op("MSTORE")  # mem[32:64) = slot
    a.push(64).push(0).op("SHA3")  # sha3(offset=0, size=64)


def _emit_log0(a: Assembler) -> None:
    a.push(0).push(0).op("LOG0")  # empty event, keeps log plumbing honest


# --------------------------------------------------------------------- #
# ERC-20                                                                #
# --------------------------------------------------------------------- #


def erc20_code() -> bytes:
    """Token contract: ``transfer(to, amount)`` and ``mint(to, amount)``.

    ``transfer`` reverts when the caller's balance is insufficient — the
    revert path exercises journal rollback under every execution mode.
    """
    a = Assembler()
    _emit_selector_dispatch(a, [(SEL_TRANSFER, "transfer"), (SEL_MINT, "mint")])

    # -- transfer(to @4, amount @36) ------------------------------------ #
    a.label("transfer")
    a.op("POP")  # drop selector
    a.op("CALLER")
    _emit_mapping_key(a, ERC20_BALANCES_SLOT)  # [key_from]
    a.op("DUP1").op("SLOAD")  # [bal_from, key_from]
    a.push(36).op("CALLDATALOAD")  # [amt, bal_from, key_from]
    # revert when bal_from < amt
    a.op("DUP1").op("DUP3")  # [bal_from, amt, amt, bal_from, key_from]
    a.op("SWAP1")  # [amt, bal_from, amt, bal_from, key_from]
    a.op("GT").jumpi_to("insufficient")  # amt > bal_from ?
    # new_from = bal_from - amt
    a.op("SWAP1")  # [bal_from, amt, key_from]
    a.op("SUB")  # [bal_from - amt, key_from]
    a.op("SWAP1").op("SSTORE")  # sstore(key_from, new_from)
    # credit recipient
    a.push(4).op("CALLDATALOAD")  # [to]
    _emit_mapping_key(a, ERC20_BALANCES_SLOT)  # [key_to]
    a.op("DUP1").op("SLOAD")  # [bal_to, key_to]
    a.push(36).op("CALLDATALOAD").op("ADD")  # [new_to, key_to]
    a.op("SWAP1").op("SSTORE")
    _emit_log0(a)
    a.op("STOP")

    # -- mint(to @4, amount @36) ---------------------------------------- #
    a.label("mint")
    a.op("POP")
    a.push(4).op("CALLDATALOAD")
    _emit_mapping_key(a, ERC20_BALANCES_SLOT)  # [key_to]
    a.op("DUP1").op("SLOAD")  # [bal, key]
    a.push(36).op("CALLDATALOAD").op("ADD")  # [new, key]
    a.op("SWAP1").op("SSTORE")
    a.op("STOP")

    a.label("insufficient")
    _emit_revert(a)
    return a.assemble()


def erc20_transfer_calldata(to: Address, amount: int) -> bytes:
    return (
        SEL_TRANSFER.to_bytes(4, "big")
        + to.to_int().to_bytes(32, "big")
        + amount.to_bytes(32, "big")
    )


def erc20_mint_calldata(to: Address, amount: int) -> bytes:
    return (
        SEL_MINT.to_bytes(4, "big")
        + to.to_int().to_bytes(32, "big")
        + amount.to_bytes(32, "big")
    )


def _erc20_counted_code(partitioned: bool) -> bytes:
    """Shared assembly of the two counter variants (see module docs).

    ``transfer(to, amount, shard)`` moves balance exactly like
    :func:`erc20_code`'s transfer, then counts the transfer: the shared
    variant read-modify-writes the single ``ERC20_COUNTER_SLOT`` (and
    ignores ``shard``); the partitioned variant bumps
    ``counters[shard]`` at ``mapping_slot(shard, ERC20_COUNTER_SLOT)``.
    """
    a = Assembler()
    _emit_selector_dispatch(a, [(SEL_TRANSFER, "transfer")])

    # -- transfer(to @4, amount @36, shard @68) ------------------------- #
    a.label("transfer")
    a.op("POP")  # drop selector
    a.op("CALLER")
    _emit_mapping_key(a, ERC20_BALANCES_SLOT)  # [key_from]
    a.op("DUP1").op("SLOAD")  # [bal_from, key_from]
    a.push(36).op("CALLDATALOAD")  # [amt, bal_from, key_from]
    a.op("DUP1").op("DUP3")  # [bal_from, amt, amt, bal_from, key_from]
    a.op("SWAP1")  # [amt, bal_from, amt, bal_from, key_from]
    a.op("GT").jumpi_to("insufficient")  # amt > bal_from ?
    a.op("SWAP1")  # [bal_from, amt, key_from]
    a.op("SUB")  # [bal_from - amt, key_from]
    a.op("SWAP1").op("SSTORE")  # sstore(key_from, new_from)
    a.push(4).op("CALLDATALOAD")  # [to]
    _emit_mapping_key(a, ERC20_BALANCES_SLOT)  # [key_to]
    a.op("DUP1").op("SLOAD")  # [bal_to, key_to]
    a.push(36).op("CALLDATALOAD").op("ADD")  # [new_to, key_to]
    a.op("SWAP1").op("SSTORE")

    # -- count the transfer --------------------------------------------- #
    if partitioned:
        a.push(68).op("CALLDATALOAD")  # [shard]
        _emit_mapping_key(a, ERC20_COUNTER_SLOT)  # [key_shard]
        a.op("DUP1").op("SLOAD")  # [count, key_shard]
        a.push(1).op("ADD")  # [count+1, key_shard]
        a.op("SWAP1").op("SSTORE")
    else:
        a.push(ERC20_COUNTER_SLOT).op("SLOAD")  # [count]
        a.push(1).op("ADD")  # [count+1]
        a.push(ERC20_COUNTER_SLOT).op("SSTORE")
    _emit_log0(a)
    a.op("STOP")

    a.label("insufficient")
    _emit_revert(a)
    return a.assemble()


def erc20_shared_counter_code() -> bytes:
    """Counting token, naive layout: one global transfer counter."""
    return _erc20_counted_code(partitioned=False)


def erc20_partitioned_counter_code() -> bytes:
    """Counting token, conflict-tamed layout: per-shard counters."""
    return _erc20_counted_code(partitioned=True)


def erc20_counted_transfer_calldata(to: Address, amount: int, shard: int) -> bytes:
    """Calldata accepted by *both* counter variants (shard ignored by the
    shared one) — identical traffic, different conflict footprint."""
    return (
        SEL_TRANSFER.to_bytes(4, "big")
        + to.to_int().to_bytes(32, "big")
        + amount.to_bytes(32, "big")
        + shard.to_bytes(32, "big")
    )


# --------------------------------------------------------------------- #
# AMM pair                                                              #
# --------------------------------------------------------------------- #


def amm_code(token_out: Address) -> bytes:
    """Constant-product pool: ``swap(amount_in)``.

    Reads both reserve slots, writes both (the hotspot), then CALLs the
    output token's ``mint(caller, amount_out)`` so a swap also touches the
    token contract — cross-contract conflict propagation through a real
    inter-contract message call.
    """
    a = Assembler()
    _emit_selector_dispatch(a, [(SEL_SWAP, "swap")])

    a.label("swap")
    a.op("POP")
    a.push(4).op("CALLDATALOAD")  # [in]
    a.op("DUP1").op("ISZERO").jumpi_to("badinput")
    a.push(AMM_RESERVE0_SLOT).op("SLOAD")  # [r0, in]
    a.push(AMM_RESERVE1_SLOT).op("SLOAD")  # [r1, r0, in]
    # out = (in * r1) / (r0 + in)
    a.op("DUP3").op("MUL")  # [in*r1, r0, in]
    a.op("SWAP1")  # [r0, in*r1, in]
    a.op("DUP3").op("ADD")  # [r0+in, in*r1, in]
    a.op("SWAP1")  # [in*r1, r0+in, in]
    a.op("DIV")  # [out, in]
    # r1' = r1 - out ; r0' = r0 + in   (recompute via SLOADs kept simple)
    a.op("DUP1")  # [out, out, in]
    a.push(AMM_RESERVE1_SLOT).op("SLOAD")  # [r1, out, out, in]
    a.op("SUB")  # [r1-out, out, in]
    a.push(AMM_RESERVE1_SLOT).op("SSTORE")  # [out, in]
    a.op("SWAP1")  # [in, out]
    a.push(AMM_RESERVE0_SLOT).op("SLOAD")  # [r0, in, out]
    a.op("ADD")  # [r0+in, out]
    a.push(AMM_RESERVE0_SLOT).op("SSTORE")  # [out]

    # mint the output token to the caller: token.mint(caller, out)
    sel_word = SEL_MINT << 224
    a.push(sel_word).push(0).op("MSTORE")  # mem[0:32) selector-aligned
    a.op("CALLER").push(4).op("MSTORE")  # mem[4:36) = caller
    a.push(36).op("MSTORE")  # mem[36:68) = out  (pops [36, out]? no:)
    # NOTE: MSTORE pops offset then value; stack here is [out]; we pushed 36
    # so the pop order is offset=36, value=out.  Correct.
    a.push(0)  # out_size
    a.push(0)  # out_off
    a.push(68)  # in_size
    a.push(0)  # in_off
    a.push(0)  # value
    a.push(token_out.to_int())  # to
    a.push(200_000)  # gas
    a.op("CALL")
    a.op("ISZERO").jumpi_to("mintfailed")
    _emit_log0(a)
    a.op("STOP")

    a.label("badinput")
    _emit_revert(a)
    a.label("mintfailed")
    _emit_revert(a)
    return a.assemble()


def amm_swap_calldata(amount_in: int) -> bytes:
    return SEL_SWAP.to_bytes(4, "big") + amount_in.to_bytes(32, "big")


# --------------------------------------------------------------------- #
# NFT collection                                                        #
# --------------------------------------------------------------------- #


def nft_code() -> bytes:
    """NFT mint with a shared counter: ``mint()``.

    ``id = next_id; next_id += 1; owners[id] = caller`` — every mint
    read-writes slot 0, so all mints of one collection serialise.
    """
    a = Assembler()
    _emit_selector_dispatch(a, [(SEL_NFT_MINT, "mint")])

    a.label("mint")
    a.op("POP")
    a.push(NFT_NEXT_ID_SLOT).op("SLOAD")  # [id]
    a.op("DUP1").push(1).op("ADD")  # [id+1, id]
    a.push(NFT_NEXT_ID_SLOT).op("SSTORE")  # [id]
    _emit_mapping_key(a, NFT_OWNERS_SLOT)  # [owner_key]
    a.op("CALLER")  # [caller, owner_key]
    a.op("SWAP1")  # [owner_key, caller]
    a.op("SSTORE")
    _emit_log0(a)
    a.op("STOP")
    return a.assemble()


def nft_mint_calldata() -> bytes:
    return SEL_NFT_MINT.to_bytes(4, "big")


# --------------------------------------------------------------------- #
# airdrop distributor                                                   #
# --------------------------------------------------------------------- #


def airdrop_code() -> bytes:
    """Airdrop ``claim()``: one claim per address while supply remains.

    Conflicts on the shared remaining-supply counter (slot 0); the
    double-claim guard gives the workload a natural revert path.
    """
    a = Assembler()
    _emit_selector_dispatch(a, [(SEL_CLAIM, "claim")])

    a.label("claim")
    a.op("POP")
    # already claimed?
    a.op("CALLER")
    _emit_mapping_key(a, AIRDROP_CLAIMED_SLOT)  # [claim_key]
    a.op("DUP1").op("SLOAD")  # [claimed, claim_key]
    a.jumpi_to("alreadyclaimed")  # [claim_key]
    # supply left?
    a.push(AIRDROP_REMAINING_SLOT).op("SLOAD")  # [remaining, claim_key]
    a.op("DUP1").op("ISZERO").jumpi_to("exhausted")
    # remaining -= 1
    a.push(1).op("SWAP1").op("SUB")  # [remaining-1, claim_key]
    a.push(AIRDROP_REMAINING_SLOT).op("SSTORE")  # [claim_key]
    # claimed[caller] = 1
    a.push(1).op("SWAP1").op("SSTORE")  # sstore(claim_key, 1)
    _emit_log0(a)
    a.op("STOP")

    a.label("alreadyclaimed")
    _emit_revert(a)
    a.label("exhausted")
    _emit_revert(a)
    return a.assemble()


def airdrop_claim_calldata() -> bytes:
    return SEL_CLAIM.to_bytes(4, "big")
