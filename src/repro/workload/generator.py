"""Per-block transaction sampling with tunable hotspot pressure.

The generator reproduces the statistical properties the paper's evaluation
depends on:

* ~132 transactions per block (§5.1), jittered;
* a transaction mix spanning plain payments, token transfers, AMM swaps,
  NFT mints and airdrop claims (§5.5's application patterns);
* ``hotspot_intensity`` concentrates contract traffic on the single
  hottest instance of each family; at the mainnet calibration the largest
  dependency subgraph averages ≈27.5% of the block (Fig. 8's observation),
  and sweeping the knob sweeps that ratio — the x-axis of Fig. 8;
* Zipf-skewed receiver popularity, so payment graphs also percolate.

Invariant: every generated transaction is *valid at generation order*
(correct nonce, affordable); transactions may still revert (token
insufficiency, double claims), which is realistic and exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.types import Address
from repro.txpool.transaction import Transaction
from repro.workload.contracts import (
    airdrop_claim_calldata,
    amm_swap_calldata,
    deploy_initcode,
    erc20_code,
    erc20_transfer_calldata,
    nft_mint_calldata,
)
from repro.workload.universe import Universe

__all__ = ["WorkloadConfig", "BlockWorkloadGenerator"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload shape parameters (see module docs)."""

    txs_per_block: int = 132
    tx_count_jitter: float = 0.12
    # transaction-type mix (normalised internally)
    w_payment: float = 0.30
    w_erc20: float = 0.40
    w_amm: float = 0.14
    w_nft: float = 0.09
    w_airdrop: float = 0.07
    #: probability that a contract transaction targets the hottest instance
    #: of its family (0 = uniform spread, 1 = all traffic on one contract)
    hotspot_intensity: float = 0.52
    #: chance of reusing a sender already used in this block (nonce chains)
    sender_repeat_prob: float = 0.04
    #: Zipf-ish skew for payment receivers (higher = more concentrated)
    receiver_skew: float = 1.0
    #: fraction of token transfers that attempt more than the balance
    #: (exercises the revert path)
    revert_fraction: float = 0.01
    #: fraction of transactions that deploy a fresh contract (CREATE txs —
    #: new token clones entering the ecosystem).  Off by default: the
    #: calibrated benchmarks were fitted without deployments; enable for
    #: workloads that should exercise the CREATE path end to end.
    deploy_fraction: float = 0.0
    gas_price_min: int = 10
    gas_price_max: int = 200
    seed: int = 42

    def weights(self) -> List[float]:
        return [self.w_payment, self.w_erc20, self.w_amm, self.w_nft, self.w_airdrop]


_KINDS = ["payment", "erc20", "amm", "nft", "airdrop"]

# generous per-kind gas limits (execution uses far less; unused gas refunds)
_GAS_LIMITS = {
    "payment": 60_000,
    "erc20": 400_000,
    "amm": 900_000,
    "nft": 400_000,
    "airdrop": 400_000,
}


class BlockWorkloadGenerator:
    """Stateful generator: tracks nonces and airdrop claims across blocks."""

    def __init__(self, universe: Universe, config: Optional[WorkloadConfig] = None):
        if not universe.eoas:
            raise ValueError("cannot generate transactions: universe has no EOAs")
        self.universe = universe
        cfg = config or WorkloadConfig()
        self.rng = random.Random(cfg.seed)
        self._claimed: Dict[Address, set] = {a: set() for a in universe.airdrops}
        self.config = cfg  # property: validates and derives sampling weights

    @property
    def config(self) -> WorkloadConfig:
        return self._config

    @config.setter
    def config(self, value: WorkloadConfig) -> None:
        """Swap the workload shape mid-stream (scenario engines modulate
        the mix per height).  The RNG is *not* reseeded — the stream stays
        one deterministic function of the original seed."""
        weights = value.weights()
        if any(w < 0 for w in weights):
            raise ValueError("workload mix weights must be non-negative")
        universe = self.universe
        # a weighted kind with no deployed instances would crash sampling
        # (IndexError out of an empty family); zero it out instead so
        # partial universes (payments-only, no AMMs, ...) just work
        families = [
            universe.eoas,
            universe.tokens,
            universe.amms,
            universe.nfts,
            universe.airdrops,
        ]
        kind_weights = [w if family else 0.0 for w, family in zip(weights, families)]
        if sum(kind_weights) <= 0 and value.deploy_fraction < 1.0:
            raise ValueError(
                "workload mix is empty: every transaction kind has zero weight "
                "or no deployed instances (and deploy_fraction < 1)"
            )
        self._config = value
        self._kind_weights = kind_weights
        # precomputed Zipf-like weights over EOAs for receiver popularity
        skew = value.receiver_skew
        self._receiver_weights = [
            1.0 / (rank + 1) ** skew for rank in range(len(universe.eoas))
        ]

    # ------------------------------------------------------------------ #

    def _pick_receiver(self) -> Address:
        return self.rng.choices(self.universe.eoas, self._receiver_weights)[0]

    def _pick_hot_or_uniform(self, instances: Sequence) -> object:
        """The family hotspot with probability ``hotspot_intensity``.

        At intensity 0 traffic spreads uniformly over the *non-hottest*
        instances — the hotspot contributes nothing, which is the sweep's
        intended floor.  An empty family is a configuration error (the
        constructor zeroes the weights of missing families, so reaching
        this with one means the caller bypassed the mix).
        """
        if not instances:
            raise ValueError(
                "no deployed instances of the requested contract family"
            )
        if len(instances) == 1 or self.rng.random() < self.config.hotspot_intensity:
            return instances[0]
        return self.rng.choice(instances[1:])

    def _pick_sender(self, used: List[Address]) -> Address:
        cfg = self.config
        if used and self.rng.random() < cfg.sender_repeat_prob:
            return self.rng.choice(used)
        return self.rng.choice(self.universe.eoas)

    # ------------------------------------------------------------------ #

    def generate_block_txs(self, count: Optional[int] = None) -> List[Transaction]:
        """Sample one block's worth of pending transactions."""
        cfg = self.config
        rng = self.rng
        uni = self.universe
        if count is None:
            jitter = int(cfg.txs_per_block * cfg.tx_count_jitter)
            count = cfg.txs_per_block + rng.randint(-jitter, jitter) if jitter else cfg.txs_per_block
        txs: List[Transaction] = []
        used_senders: List[Address] = []

        deploy_code = (
            deploy_initcode(erc20_code()) if cfg.deploy_fraction > 0 else b""
        )
        for _ in range(count):
            if cfg.deploy_fraction > 0 and rng.random() < cfg.deploy_fraction:
                kind = "deploy"
            else:
                kind = rng.choices(_KINDS, self._kind_weights)[0]
            drop = None
            if kind == "airdrop":
                drop = self._pick_hot_or_uniform(uni.airdrops)
                claimed = self._claimed[drop]
                fresh = [e for e in uni.eoas if e not in claimed]
                # prefer an unclaimed sender so most claims succeed; fall
                # back to a repeat claimer (its claim reverts — realistic)
                sender = rng.choice(fresh) if fresh else self._pick_sender(used_senders)
                claimed.add(sender)
            else:
                sender = self._pick_sender(used_senders)
            used_senders.append(sender)
            nonce = uni.next_nonce(sender)
            gas_price = rng.randint(cfg.gas_price_min, cfg.gas_price_max)

            if kind == "deploy":
                tx = Transaction(
                    sender=sender,
                    to=None,
                    value=0,
                    data=deploy_code,
                    gas_limit=3_000_000,
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="deploy",
                )
            elif kind == "payment":
                to = self._pick_receiver()
                tx = Transaction(
                    sender=sender,
                    to=to,
                    value=rng.randint(1, 10**9),
                    data=b"",
                    gas_limit=_GAS_LIMITS[kind],
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="payment",
                )
            elif kind == "erc20":
                token = self._pick_hot_or_uniform(uni.tokens)
                to = self._pick_receiver()
                if rng.random() < cfg.revert_fraction:
                    amount = uni.config.initial_token_balance * 10**6  # reverts
                else:
                    amount = rng.randint(1, 10**6)
                tx = Transaction(
                    sender=sender,
                    to=token,
                    value=0,
                    data=erc20_transfer_calldata(to, amount),
                    gas_limit=_GAS_LIMITS[kind],
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="erc20",
                )
            elif kind == "amm":
                pool, _tin, _tout = self._pick_hot_or_uniform(uni.amms)
                tx = Transaction(
                    sender=sender,
                    to=pool,
                    value=0,
                    data=amm_swap_calldata(rng.randint(10**3, 10**9)),
                    gas_limit=_GAS_LIMITS[kind],
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="amm",
                )
            elif kind == "nft":
                collection = self._pick_hot_or_uniform(uni.nfts)
                tx = Transaction(
                    sender=sender,
                    to=collection,
                    value=0,
                    data=nft_mint_calldata(),
                    gas_limit=_GAS_LIMITS[kind],
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="nft",
                )
            else:  # airdrop
                tx = Transaction(
                    sender=sender,
                    to=drop,
                    value=0,
                    data=airdrop_claim_calldata(),
                    gas_limit=_GAS_LIMITS[kind],
                    gas_price=gas_price,
                    nonce=nonce,
                    tag="airdrop",
                )
            txs.append(tx)
        return txs

    def generate_blocks(self, n_blocks: int) -> List[List[Transaction]]:
        """Generate transaction sets for ``n_blocks`` consecutive blocks."""
        return [self.generate_block_txs() for _ in range(n_blocks)]
