"""Named workload parameterisations and the scenario stream engine.

Config-level scenarios (plain :class:`WorkloadConfig` factories):

* ``mainnet`` — the default calibration: ≈132 tx/block with the mix and
  hotspot pressure tuned so the largest dependency subgraph averages near
  the paper's 27.5% (§5.5).
* ``payment_heavy`` — early-era blocks: mostly plain transfers, high
  parallelism (the regime where Saraph et al. report blocks parallelise
  well).
* ``hotspot(h)`` — the Fig. 8 sweep: same mix, hotspot intensity ``h``.
* ``era_profile(height)`` — parallelizability decays with chain age
  ("the parallelizability of blocks decreases over time", §5.5): later
  heights shift weight from payments toward DeFi/NFT hotspots.

Stream-level scenarios (:data:`SCENARIO_REGISTRY`, via
:func:`get_scenario`) go beyond what a single static config can express.
Each is a :class:`ScenarioStream` — a stateful, lazily-iterated block
source layered on :class:`BlockWorkloadGenerator` — reproducing traffic
shapes from the related literature:

* ``counter-shared`` / ``counter-partitioned`` — the semantic
  conflict-reduction pair of Garamvölgyi et al.: identical counted-ERC-20
  traffic (same seed ⇒ same senders, receivers, amounts) hitting either
  the global-counter or the per-shard-counter token variant.  The only
  difference is the counter's storage layout, so any conflict-graph delta
  is purely the commutativity win.
* ``airdrop-storm`` / ``nft-mint-rush`` — burst-arrival models: a
  periodic envelope swaps the per-block mix between calm mainnet traffic
  and a claim/mint stampede on one hot contract.
* ``mev-bundles`` — Block-STM's adversarial pattern: searcher bundles
  (frontrun → victim → backrun on one AMM pool) injected into organic
  traffic, producing long dependency chains and searcher nonce chains.
* ``long-tail`` — a streaming generator drawing payment receivers from a
  million-account universe via inverse-CDF Zipf sampling; accounts are
  materialised lazily (an address is just a number until a payment
  creates it), so memory stays bounded by the *sender* set.
* ``day-in-the-life`` — a 24-block diurnal cycle composing era drift
  with a storm phase, an MEV window and a mint rush.

Determinism contract: a stream is a pure function of its construction
seed.  Same scenario + same seed ⇒ byte-identical transaction stream
(see :func:`tx_fingerprint`), which the property suite enforces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from repro.common.types import Address
from repro.txpool.transaction import Transaction
from repro.workload.contracts import (
    amm_swap_calldata,
    erc20_counted_transfer_calldata,
)
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import Universe, UniverseConfig, build_universe

__all__ = [
    "mainnet_scenario",
    "payment_heavy_scenario",
    "hotspot_scenario",
    "era_profile",
    "SCENARIOS",
    "ScenarioStream",
    "CounterTokenStream",
    "BurstScenarioStream",
    "MevBundleStream",
    "StreamingLongTailGenerator",
    "LongTailStream",
    "DayInTheLifeStream",
    "ScenarioSpec",
    "SCENARIO_REGISTRY",
    "get_scenario",
    "scenario_names",
    "tx_fingerprint",
    "build_mev_bundle",
    "LONG_TAIL_ACCOUNT_BASE",
]


def mainnet_scenario(seed: int = 42) -> WorkloadConfig:
    """The paper-calibrated default (see EXPERIMENTS.md for the fit)."""
    return WorkloadConfig(seed=seed)


def payment_heavy_scenario(seed: int = 42) -> WorkloadConfig:
    """Early-chain traffic: payments dominate, weak hotspots."""
    return WorkloadConfig(
        w_payment=0.80,
        w_erc20=0.15,
        w_amm=0.02,
        w_nft=0.02,
        w_airdrop=0.01,
        hotspot_intensity=0.1,
        receiver_skew=0.6,
        seed=seed,
    )


def hotspot_scenario(intensity: float, seed: int = 42) -> WorkloadConfig:
    """Fig. 8's independent variable: sweep the hotspot pressure."""
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    return WorkloadConfig(hotspot_intensity=intensity, seed=seed)


def era_profile(height: int, *, horizon: int = 10_000_000, seed: int = 42) -> WorkloadConfig:
    """Interpolate from payment-heavy genesis-era traffic to the hotspot-
    dominated modern mix as ``height`` approaches ``horizon``."""
    t = max(0.0, min(1.0, height / horizon))
    early = payment_heavy_scenario(seed)
    late = mainnet_scenario(seed)

    def lerp(a: float, b: float) -> float:
        return a + (b - a) * t

    return replace(
        early,
        w_payment=lerp(early.w_payment, late.w_payment),
        w_erc20=lerp(early.w_erc20, late.w_erc20),
        w_amm=lerp(early.w_amm, late.w_amm),
        w_nft=lerp(early.w_nft, late.w_nft),
        w_airdrop=lerp(early.w_airdrop, late.w_airdrop),
        hotspot_intensity=lerp(early.hotspot_intensity, late.hotspot_intensity),
        receiver_skew=lerp(early.receiver_skew, late.receiver_skew),
    )


SCENARIOS: Dict[str, Callable[..., WorkloadConfig]] = {
    "mainnet": mainnet_scenario,
    "payment_heavy": payment_heavy_scenario,
    "hotspot": hotspot_scenario,
}


# ===================================================================== #
# Scenario stream engine                                                #
# ===================================================================== #

#: synthetic receiver space for the streaming long-tail generator; clear
#: of EOAs (0x1000_0000+) and genesis contracts (0xC0 << 152 | ...)
LONG_TAIL_ACCOUNT_BASE = 0x4000_0000


def tx_fingerprint(tx: Transaction) -> bytes:
    """Canonical byte serialisation of everything that matters for
    equality — two streams are byte-identical iff their fingerprint
    sequences match."""
    to = bytes(tx.to) if tx.to is not None else b"\xff" * 20
    return b"".join(
        (
            bytes(tx.sender),
            to,
            tx.value.to_bytes(16, "big"),
            tx.gas_limit.to_bytes(8, "big"),
            tx.gas_price.to_bytes(8, "big"),
            tx.nonce.to_bytes(8, "big"),
            len(tx.data).to_bytes(4, "big"),
            tx.data,
        )
    )


class ScenarioStream:
    """A lazily-iterated block source: generator + per-height modulation.

    Subclasses customise two hooks:

    * :meth:`config_at` — return a :class:`WorkloadConfig` to swap in
      before sampling a given height (burst envelopes, era drift).  The
      generator's RNG is *not* reseeded on swap, so the stream stays a
      single deterministic function of the construction seed.
    * :meth:`_post` — transform or extend the sampled transactions
      (bundle injection, adversarial traffic).

    The stream exposes the same ``generate_block_txs`` /
    ``generate_blocks`` surface as :class:`BlockWorkloadGenerator`, so
    every consumer (CLI, benches, fuzzer) can take either.
    """

    def __init__(
        self,
        universe: Universe,
        config: Optional[WorkloadConfig] = None,
        *,
        generator: Optional[BlockWorkloadGenerator] = None,
    ):
        self.universe = universe
        self.generator = generator or BlockWorkloadGenerator(universe, config)
        self.height = 0

    # hooks ------------------------------------------------------------ #

    def config_at(self, height: int) -> Optional[WorkloadConfig]:
        """Workload shape for ``height`` (None = keep the current one)."""
        return None

    def _post(self, height: int, txs: List[Transaction]) -> List[Transaction]:
        """Post-process one block's transactions."""
        return txs

    # iteration -------------------------------------------------------- #

    def generate_block_txs(self, count: Optional[int] = None) -> List[Transaction]:
        height = self.height
        cfg = self.config_at(height)
        if cfg is not None and cfg is not self.generator.config:
            self.generator.config = cfg
        txs = self.generator.generate_block_txs(count)
        txs = self._post(height, txs)
        self.height += 1
        return txs

    def generate_blocks(self, n_blocks: int) -> List[List[Transaction]]:
        return [self.generate_block_txs() for _ in range(n_blocks)]

    def iter_blocks(
        self, n_blocks: Optional[int] = None
    ) -> Iterator[List[Transaction]]:
        """Lazy block iterator (unbounded when ``n_blocks`` is None)."""
        produced = 0
        while n_blocks is None or produced < n_blocks:
            yield self.generate_block_txs()
            produced += 1


# --------------------------------------------------------------------- #
# (a) commutative / partitioned-counter ERC-20                          #
# --------------------------------------------------------------------- #


class CounterTokenStream(ScenarioStream):
    """Counted-ERC-20 traffic against the shared- or partitioned-counter
    token variant.

    The RNG draw sequence is independent of the variant: both variants of
    a given seed see the same senders, receivers, amounts and token
    indices, and the shard index is a pure function of the sender.  The
    only difference between the two streams is which address-family the
    token index resolves into — so the conflict-graph delta between them
    is exactly the counter layout (the commutativity regression test
    keys off this).
    """

    def __init__(
        self,
        universe: Universe,
        config: Optional[WorkloadConfig] = None,
        *,
        partitioned: bool,
        payment_fraction: float = 0.1,
    ):
        super().__init__(universe, config)
        tokens = (
            universe.partitioned_tokens if partitioned else universe.counter_tokens
        )
        if not tokens:
            raise ValueError(
                "universe has no counter-token variants: build it with "
                "n_counter_tokens / n_partitioned_tokens > 0"
            )
        self.partitioned = partitioned
        self.tokens = tokens
        self.payment_fraction = payment_fraction

    def generate_block_txs(self, count: Optional[int] = None) -> List[Transaction]:
        cfg = self.generator.config
        rng = self.generator.rng
        uni = self.universe
        if count is None:
            count = cfg.txs_per_block
        shards = max(1, uni.config.counter_shards)
        txs: List[Transaction] = []
        for _ in range(count):
            # draw order is variant-independent: every branch consumes the
            # same RNG sequence, so shared and partitioned runs of one
            # seed carry identical traffic
            is_payment = rng.random() < self.payment_fraction
            sender = rng.choice(uni.eoas)
            token = self.tokens[rng.randrange(len(self.tokens))]
            to = rng.choices(uni.eoas, self.generator._receiver_weights)[0]
            amount = rng.randint(1, 10**6)
            gas_price = rng.randint(cfg.gas_price_min, cfg.gas_price_max)
            nonce = uni.next_nonce(sender)
            if is_payment:
                txs.append(
                    Transaction(
                        sender=sender,
                        to=to,
                        value=amount,
                        data=b"",
                        gas_limit=60_000,
                        gas_price=gas_price,
                        nonce=nonce,
                        tag="payment",
                    )
                )
            else:
                shard = sender.to_int() % shards
                txs.append(
                    Transaction(
                        sender=sender,
                        to=token,
                        value=0,
                        data=erc20_counted_transfer_calldata(to, amount, shard),
                        gas_limit=400_000,
                        gas_price=gas_price,
                        nonce=nonce,
                        tag="erc20-counter",
                    )
                )
        self.height += 1
        return txs


# --------------------------------------------------------------------- #
# (b) burst-arrival models                                              #
# --------------------------------------------------------------------- #


class BurstScenarioStream(ScenarioStream):
    """Per-height mix modulation through an envelope function."""

    def __init__(
        self,
        universe: Universe,
        envelope: Callable[[int], WorkloadConfig],
        *,
        seed: int = 42,
    ):
        self.envelope = envelope
        super().__init__(universe, envelope(0))
        # config_at swaps shapes; the seed lives in the RNG, created once
        self.generator.rng.seed(seed)

    def config_at(self, height: int) -> Optional[WorkloadConfig]:
        return self.envelope(height)


def _storm_envelope(
    calm: WorkloadConfig,
    storm: WorkloadConfig,
    *,
    period: int,
    burst: int,
) -> Callable[[int], WorkloadConfig]:
    def envelope(height: int) -> WorkloadConfig:
        return storm if (height % period) < burst else calm

    return envelope


def airdrop_storm_envelope(
    seed: int = 42, *, period: int = 8, burst: int = 3
) -> Callable[[int], WorkloadConfig]:
    """Airdrop claim stampede: the first ``burst`` of every ``period``
    blocks is ~3/4 claims on the hottest distributor."""
    calm = mainnet_scenario(seed)
    storm = replace(
        calm,
        w_payment=0.12,
        w_erc20=0.08,
        w_amm=0.03,
        w_nft=0.02,
        w_airdrop=0.75,
        hotspot_intensity=0.92,
    )
    return _storm_envelope(calm, storm, period=period, burst=burst)


def nft_mint_rush_envelope(
    seed: int = 42, *, period: int = 8, burst: int = 3
) -> Callable[[int], WorkloadConfig]:
    """Drop-day mint rush: burst blocks are ~3/4 mints on one collection
    (its ``next_id`` counter serialises the whole rush)."""
    calm = mainnet_scenario(seed)
    storm = replace(
        calm,
        w_payment=0.12,
        w_erc20=0.08,
        w_amm=0.03,
        w_nft=0.75,
        w_airdrop=0.02,
        hotspot_intensity=0.92,
    )
    return _storm_envelope(calm, storm, period=period, burst=burst)


# --------------------------------------------------------------------- #
# (c) MEV-style dependent bundles                                       #
# --------------------------------------------------------------------- #


def build_mev_bundle(
    universe: Universe,
    rng,
    searcher: Address,
    *,
    hot_pool_bias: float = 0.7,
) -> List[Transaction]:
    """One sandwich: searcher frontrun, victim swap, searcher backrun —
    all on one AMM pool, whose reserve slots chain the three serially."""
    amms = universe.amms
    if not amms:
        raise ValueError("MEV bundles need at least one AMM pool")
    if len(amms) == 1 or rng.random() < hot_pool_bias:
        pool, _tin, _tout = amms[0]
    else:
        pool, _tin, _tout = amms[1 + rng.randrange(len(amms) - 1)]
    victim = rng.choice(universe.eoas)
    bundle: List[Transaction] = []
    for who, tag in (
        (searcher, "mev-front"),
        (victim, "mev-victim"),
        (searcher, "mev-back"),
    ):
        bundle.append(
            Transaction(
                sender=who,
                to=pool,
                value=0,
                data=amm_swap_calldata(rng.randint(10**3, 10**9)),
                gas_limit=900_000,
                gas_price=rng.randint(150, 400),  # bundles bid high
                nonce=universe.next_nonce(who),
                tag=tag,
            )
        )
    return bundle


class MevBundleStream(ScenarioStream):
    """Organic traffic plus searcher bundles appended per block.

    Searchers rotate round-robin over a small set, so each accumulates a
    long nonce chain on top of the serial reserve-slot chains — the
    dependent-path adversary Block-STM evaluates against.
    """

    def __init__(
        self,
        universe: Universe,
        config: Optional[WorkloadConfig] = None,
        *,
        bundles_per_block: int = 4,
        n_searchers: int = 4,
        hot_pool_bias: float = 0.7,
    ):
        super().__init__(universe, config)
        n_searchers = max(1, min(n_searchers, len(universe.eoas)))
        self.searchers = list(universe.eoas[:n_searchers])
        self.bundles_per_block = bundles_per_block
        self.hot_pool_bias = hot_pool_bias
        self._next_searcher = 0

    def _post(self, height: int, txs: List[Transaction]) -> List[Transaction]:
        rng = self.generator.rng
        for _ in range(self.bundles_per_block):
            searcher = self.searchers[self._next_searcher % len(self.searchers)]
            self._next_searcher += 1
            txs.extend(
                build_mev_bundle(
                    self.universe,
                    rng,
                    searcher,
                    hot_pool_bias=self.hot_pool_bias,
                )
            )
        return txs


# --------------------------------------------------------------------- #
# (d) streaming long-tail generator                                     #
# --------------------------------------------------------------------- #


class StreamingLongTailGenerator(BlockWorkloadGenerator):
    """Payment receivers drawn lazily from a million-account universe.

    Inverse-CDF sampling of a bounded Zipf(s≈1) over ``universe_size``
    ranks: ``rank = ⌊exp(u·ln(N+1))⌋ − 1`` needs no weight table, so the
    account universe is never materialised — a receiver only becomes
    state when a payment credits it.  Memory is O(senders), not O(N)
    (the bounded-memory test pins this).
    """

    def __init__(
        self,
        universe: Universe,
        config: Optional[WorkloadConfig] = None,
        *,
        universe_size: int = 1_000_000,
    ):
        if universe_size < 1:
            raise ValueError("universe_size must be positive")
        self.universe_size = universe_size
        self._log_n1 = math.log(universe_size + 1)
        super().__init__(universe, config)

    def _pick_receiver(self) -> Address:
        u = self.rng.random()
        rank = int(math.exp(u * self._log_n1)) - 1
        rank = min(max(rank, 0), self.universe_size - 1)
        return Address.from_int(LONG_TAIL_ACCOUNT_BASE + rank)


class LongTailStream(ScenarioStream):
    """Payment-only traffic through the streaming long-tail generator."""

    def __init__(
        self,
        universe: Universe,
        config: Optional[WorkloadConfig] = None,
        *,
        universe_size: int = 1_000_000,
    ):
        cfg = config or replace(
            payment_heavy_scenario(),
            w_payment=1.0,
            w_erc20=0.0,
            w_amm=0.0,
            w_nft=0.0,
            w_airdrop=0.0,
        )
        super().__init__(
            universe,
            generator=StreamingLongTailGenerator(
                universe, cfg, universe_size=universe_size
            ),
        )


# --------------------------------------------------------------------- #
# (e) day-in-the-life replay                                            #
# --------------------------------------------------------------------- #


class DayInTheLifeStream(ScenarioStream):
    """A 24-block diurnal cycle composing the other shapes.

    Within each cycle: era-drifted organic traffic, an airdrop storm at
    hours 6–9, an MEV window at hours 10–13 (bundle injection), and an
    NFT mint rush at hours 14–17.  Across cycles the era drift advances,
    so later days are more hotspot-bound than earlier ones (§5.5).
    """

    CYCLE = 24
    STORM_HOURS = range(6, 10)
    MEV_HOURS = range(10, 14)
    MINT_HOURS = range(14, 18)

    def __init__(
        self,
        universe: Universe,
        *,
        seed: int = 42,
        txs_per_block: Optional[int] = None,
        drift_horizon: int = 10 * 24,
    ):
        self.seed = seed
        self.txs_per_block = txs_per_block
        self.drift_horizon = drift_horizon
        self._storm = airdrop_storm_envelope(seed)
        self._mint = nft_mint_rush_envelope(seed)
        super().__init__(universe, self._shape(0))
        self.searchers = list(universe.eoas[: min(4, len(universe.eoas))])
        self._next_searcher = 0

    def _shape(self, height: int) -> WorkloadConfig:
        hour = height % self.CYCLE
        if hour in self.STORM_HOURS:
            cfg = self._storm(0)  # storm block of the envelope's cycle
        elif hour in self.MINT_HOURS:
            cfg = self._mint(0)
        else:
            cfg = era_profile(height, horizon=self.drift_horizon, seed=self.seed)
        if self.txs_per_block is not None:
            cfg = replace(cfg, txs_per_block=self.txs_per_block)
        return cfg

    def config_at(self, height: int) -> Optional[WorkloadConfig]:
        return self._shape(height)

    def _post(self, height: int, txs: List[Transaction]) -> List[Transaction]:
        if (height % self.CYCLE) in self.MEV_HOURS and self.universe.amms:
            rng = self.generator.rng
            for _ in range(2):
                searcher = self.searchers[self._next_searcher % len(self.searchers)]
                self._next_searcher += 1
                txs.extend(build_mev_bundle(self.universe, rng, searcher))
        return txs


# --------------------------------------------------------------------- #
# registry                                                              #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScenarioSpec:
    """A named scenario: summary line plus a stream factory."""

    name: str
    summary: str
    factory: Callable[[int, Optional[int], bool], ScenarioStream]


def _counter_universe(compact: bool) -> Universe:
    return build_universe(
        UniverseConfig(
            n_eoas=24 if compact else 400,
            n_tokens=0,
            n_amms=0,
            n_nfts=0,
            n_airdrops=0,
            n_counter_tokens=4,
            n_partitioned_tokens=4,
            counter_shards=8,
        )
    )


def _full_universe(compact: bool) -> Universe:
    if compact:
        # ≥6 EOAs: the fuzzer's adversarial forgeries need that many
        return build_universe(
            UniverseConfig(n_eoas=40, n_tokens=4, n_amms=2, n_nfts=2, n_airdrops=2)
        )
    return build_universe(
        UniverseConfig(n_eoas=400, n_tokens=8, n_amms=4, n_nfts=3, n_airdrops=2)
    )


def _sized(cfg: WorkloadConfig, txs_per_block: Optional[int]) -> WorkloadConfig:
    if txs_per_block is None:
        return cfg
    return replace(cfg, txs_per_block=txs_per_block, tx_count_jitter=0.0)


def _counter_factory(partitioned: bool):
    def factory(
        seed: int, txs_per_block: Optional[int], compact: bool
    ) -> ScenarioStream:
        cfg = _sized(replace(mainnet_scenario(seed), tx_count_jitter=0.0), txs_per_block)
        return CounterTokenStream(
            _counter_universe(compact), cfg, partitioned=partitioned
        )

    return factory


def _burst_factory(envelope_fn: Callable[..., Callable[[int], WorkloadConfig]]):
    def factory(
        seed: int, txs_per_block: Optional[int], compact: bool
    ) -> ScenarioStream:
        base = envelope_fn(seed)

        def envelope(height: int) -> WorkloadConfig:
            return _sized(base(height), txs_per_block)

        return BurstScenarioStream(_full_universe(compact), envelope, seed=seed)

    return factory


def _mev_factory(
    seed: int, txs_per_block: Optional[int], compact: bool
) -> ScenarioStream:
    cfg = _sized(mainnet_scenario(seed), txs_per_block)
    return MevBundleStream(
        _full_universe(compact), cfg, bundles_per_block=2 if compact else 4
    )


def _long_tail_factory(
    seed: int, txs_per_block: Optional[int], compact: bool
) -> ScenarioStream:
    universe = build_universe(
        UniverseConfig(
            n_eoas=24 if compact else 200,
            n_tokens=0,
            n_amms=0,
            n_nfts=0,
            n_airdrops=0,
        )
    )
    cfg = _sized(
        replace(
            payment_heavy_scenario(seed),
            w_payment=1.0,
            w_erc20=0.0,
            w_amm=0.0,
            w_nft=0.0,
            w_airdrop=0.0,
        ),
        txs_per_block,
    )
    return LongTailStream(universe, cfg)


def _day_factory(
    seed: int, txs_per_block: Optional[int], compact: bool
) -> ScenarioStream:
    return DayInTheLifeStream(
        _full_universe(compact), seed=seed, txs_per_block=txs_per_block
    )


SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "counter-shared",
            "counted ERC-20, one global counter slot (every transfer conflicts)",
            _counter_factory(partitioned=False),
        ),
        ScenarioSpec(
            "counter-partitioned",
            "counted ERC-20, per-shard counter slots (commutative increments)",
            _counter_factory(partitioned=True),
        ),
        ScenarioSpec(
            "airdrop-storm",
            "periodic claim stampede on the hottest airdrop distributor",
            _burst_factory(airdrop_storm_envelope),
        ),
        ScenarioSpec(
            "nft-mint-rush",
            "drop-day mint burst serialised by one collection's counter",
            _burst_factory(nft_mint_rush_envelope),
        ),
        ScenarioSpec(
            "mev-bundles",
            "searcher sandwiches on AMM pools: long dependency chains",
            _mev_factory,
        ),
        ScenarioSpec(
            "long-tail",
            "streaming payments into a lazily-sampled 1M-account universe",
            _long_tail_factory,
        ),
        ScenarioSpec(
            "day-in-the-life",
            "24-block diurnal cycle: era drift + storm + MEV window + mint rush",
            _day_factory,
        ),
    )
}


def scenario_names() -> List[str]:
    return list(SCENARIO_REGISTRY)


def get_scenario(
    name: str,
    *,
    seed: int = 42,
    txs_per_block: Optional[int] = None,
    compact: bool = False,
) -> ScenarioStream:
    """Instantiate a registered scenario stream.

    ``compact`` shrinks the universe for test/fuzz-sized runs; benches
    and the CLI default to the full shape.
    """
    try:
        spec = SCENARIO_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIO_REGISTRY)}"
        ) from None
    return spec.factory(seed, txs_per_block, compact)
