"""Named workload parameterisations used by benchmarks and examples.

* ``mainnet`` — the default calibration: ≈132 tx/block with the mix and
  hotspot pressure tuned so the largest dependency subgraph averages near
  the paper's 27.5% (§5.5).
* ``payment_heavy`` — early-era blocks: mostly plain transfers, high
  parallelism (the regime where Saraph et al. report blocks parallelise
  well).
* ``hotspot(h)`` — the Fig. 8 sweep: same mix, hotspot intensity ``h``.
* ``era_profile(height)`` — parallelizability decays with chain age
  ("the parallelizability of blocks decreases over time", §5.5): later
  heights shift weight from payments toward DeFi/NFT hotspots.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.workload.generator import WorkloadConfig

__all__ = [
    "mainnet_scenario",
    "payment_heavy_scenario",
    "hotspot_scenario",
    "era_profile",
    "SCENARIOS",
]


def mainnet_scenario(seed: int = 42) -> WorkloadConfig:
    """The paper-calibrated default (see EXPERIMENTS.md for the fit)."""
    return WorkloadConfig(seed=seed)


def payment_heavy_scenario(seed: int = 42) -> WorkloadConfig:
    """Early-chain traffic: payments dominate, weak hotspots."""
    return WorkloadConfig(
        w_payment=0.80,
        w_erc20=0.15,
        w_amm=0.02,
        w_nft=0.02,
        w_airdrop=0.01,
        hotspot_intensity=0.1,
        receiver_skew=0.6,
        seed=seed,
    )


def hotspot_scenario(intensity: float, seed: int = 42) -> WorkloadConfig:
    """Fig. 8's independent variable: sweep the hotspot pressure."""
    if not 0.0 <= intensity <= 1.0:
        raise ValueError("intensity must be in [0, 1]")
    return WorkloadConfig(hotspot_intensity=intensity, seed=seed)


def era_profile(height: int, *, horizon: int = 10_000_000, seed: int = 42) -> WorkloadConfig:
    """Interpolate from payment-heavy genesis-era traffic to the hotspot-
    dominated modern mix as ``height`` approaches ``horizon``."""
    t = max(0.0, min(1.0, height / horizon))
    early = payment_heavy_scenario(seed)
    late = mainnet_scenario(seed)

    def lerp(a: float, b: float) -> float:
        return a + (b - a) * t

    return replace(
        early,
        w_payment=lerp(early.w_payment, late.w_payment),
        w_erc20=lerp(early.w_erc20, late.w_erc20),
        w_amm=lerp(early.w_amm, late.w_amm),
        w_nft=lerp(early.w_nft, late.w_nft),
        w_airdrop=lerp(early.w_airdrop, late.w_airdrop),
        hotspot_intensity=lerp(early.hotspot_intensity, late.hotspot_intensity),
        receiver_skew=lerp(early.receiver_skew, late.receiver_skew),
    )


SCENARIOS: Dict[str, Callable[..., WorkloadConfig]] = {
    "mainnet": mainnet_scenario,
    "payment_heavy": payment_heavy_scenario,
    "hotspot": hotspot_scenario,
}
