"""Workload trace recording and replay.

The paper evaluates on a *fixed* set of real blocks, which makes results
comparable across systems and runs.  The generator here is seeded and
deterministic, but a serialised trace gives the same property across
library versions and lets users archive interesting workloads (e.g. a
block that exposed a scheduling pathology) or hand-craft adversarial ones.

Format: JSON, one object with a version tag and a list of blocks, each a
list of transactions with hex-encoded binary fields.  Traces round-trip
exactly (``Transaction`` equality), which the tests verify by replaying a
recorded trace through the proposer and comparing state roots.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.common.types import Address
from repro.txpool.transaction import Transaction

__all__ = ["dump_trace", "load_trace", "save_trace_file", "load_trace_file", "TraceError"]

FORMAT_VERSION = 1


class TraceError(ValueError):
    """Malformed or unsupported trace document."""


def _tx_to_dict(tx: Transaction) -> dict:
    return {
        "sender": tx.sender.hex(),
        "to": tx.to.hex() if tx.to is not None else None,
        "value": str(tx.value),  # strings: JSON numbers lose >2**53 ints
        "data": tx.data.hex(),
        "gas_limit": tx.gas_limit,
        "gas_price": tx.gas_price,
        "nonce": tx.nonce,
        "tag": tx.tag,
    }


def _tx_from_dict(obj: dict) -> Transaction:
    try:
        return Transaction(
            sender=Address.from_hex(obj["sender"]),
            to=Address.from_hex(obj["to"]) if obj["to"] is not None else None,
            value=int(obj["value"]),
            data=bytes.fromhex(obj["data"]),
            gas_limit=int(obj["gas_limit"]),
            gas_price=int(obj["gas_price"]),
            nonce=int(obj["nonce"]),
            tag=obj.get("tag", ""),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceError(f"bad transaction record: {exc}") from exc


def dump_trace(blocks: Sequence[Sequence[Transaction]], *, note: str = "") -> str:
    """Serialise block transaction lists to a JSON document."""
    doc = {
        "format": "repro-workload-trace",
        "version": FORMAT_VERSION,
        "note": note,
        "blocks": [[_tx_to_dict(tx) for tx in block] for block in blocks],
    }
    return json.dumps(doc, indent=1)


def load_trace(text: str) -> List[List[Transaction]]:
    """Parse a trace document back into block transaction lists."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-workload-trace":
        raise TraceError("not a workload trace document")
    if doc.get("version") != FORMAT_VERSION:
        raise TraceError(f"unsupported trace version {doc.get('version')!r}")
    blocks = doc.get("blocks")
    if not isinstance(blocks, list):
        raise TraceError("missing blocks array")
    return [[_tx_from_dict(tx) for tx in block] for block in blocks]


def save_trace_file(
    path: str, blocks: Sequence[Sequence[Transaction]], *, note: str = ""
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_trace(blocks, note=note))


def load_trace_file(path: str) -> List[List[Transaction]]:
    with open(path, "r", encoding="utf-8") as fh:
        return load_trace(fh.read())
