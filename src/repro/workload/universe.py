"""Genesis construction: funded EOAs and pre-deployed hotspot contracts.

Contracts are placed in the genesis allocation with populated storage
(token balances for every EOA, AMM reserves, airdrop supply), which mirrors
how the paper's evaluation starts from a mainnet state at height 10M — the
contracts and balances already exist when the measured blocks execute.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.types import Address
from repro.state.account import AccountData
from repro.state.statedb import StateSnapshot, genesis_snapshot
from repro.workload.contracts import (
    AIRDROP_REMAINING_SLOT,
    AMM_RESERVE0_SLOT,
    AMM_RESERVE1_SLOT,
    NFT_NEXT_ID_SLOT,
    airdrop_code,
    amm_code,
    erc20_balance_slot,
    erc20_code,
    erc20_partitioned_counter_code,
    erc20_shared_counter_code,
    nft_code,
)

__all__ = ["UniverseConfig", "Universe", "build_universe"]

ETHER = 10**18


@dataclass(frozen=True)
class UniverseConfig:
    """Shape of the synthetic world."""

    n_eoas: int = 1500
    n_tokens: int = 24
    n_amms: int = 8
    n_nfts: int = 6
    n_airdrops: int = 4
    #: counting ERC-20 variants (see contracts module docs) — off by
    #: default so the paper-calibrated genesis is unchanged; the
    #: conflict-taming scenarios turn them on in matched pairs
    n_counter_tokens: int = 0
    n_partitioned_tokens: int = 0
    #: shard count of the partitioned-counter variant
    counter_shards: int = 8
    eoa_balance: int = 1_000 * ETHER
    token_holder_fraction: float = 0.8  # EOAs pre-holding each token
    initial_token_balance: int = 10**12
    amm_reserve: int = 10**15
    airdrop_supply: int = 10**9
    seed: int = 1


@dataclass
class Universe:
    """The generated world: genesis state plus the address book.

    ``nonces`` tracks the next nonce per EOA as the generator emits
    transactions; it must stay in sync with the chain (it does as long as
    every generated transaction is eventually packed — see the generator's
    invariants).
    """

    config: UniverseConfig
    genesis: StateSnapshot
    eoas: List[Address]
    tokens: List[Address]
    amms: List[Tuple[Address, Address, Address]]  # (pool, token_in, token_out)
    nfts: List[Address]
    airdrops: List[Address]
    #: counting ERC-20 variants (empty unless the config asks for them)
    counter_tokens: List[Address] = field(default_factory=list)
    partitioned_tokens: List[Address] = field(default_factory=list)
    nonces: Dict[Address, int] = field(default_factory=dict)

    def next_nonce(self, sender: Address) -> int:
        """Allocate the next nonce for ``sender`` (mutates the counter)."""
        nonce = self.nonces.get(sender, 0)
        self.nonces[sender] = nonce + 1
        return nonce

    def peek_nonce(self, sender: Address) -> int:
        return self.nonces.get(sender, 0)


def _eoa_address(index: int) -> Address:
    # offset keeps EOAs clear of the low addresses used in tests
    return Address.from_int(0x1000_0000 + index)


def _contract_address(kind: int, index: int) -> Address:
    return Address.from_int(0xC0 << 152 | kind << 32 | index)


def build_universe(config: UniverseConfig | None = None) -> Universe:
    """Build genesis state and address book for a workload run."""
    cfg = config or UniverseConfig()
    if cfg.n_eoas < 1:
        raise ValueError("universe needs at least one EOA")
    if cfg.n_amms > 0 and cfg.n_tokens < 1:
        raise ValueError("AMM pools pair tokens: n_amms > 0 needs n_tokens >= 1")
    rng = random.Random(cfg.seed)

    eoas = [_eoa_address(i) for i in range(cfg.n_eoas)]
    alloc: Dict[Address, AccountData] = {
        a: AccountData(balance=cfg.eoa_balance) for a in eoas
    }

    # tokens: every holder EOA gets an initial balance
    tokens: List[Address] = []
    token_code = erc20_code()
    for t in range(cfg.n_tokens):
        address = _contract_address(1, t)
        holders = rng.sample(
            eoas, max(1, int(len(eoas) * cfg.token_holder_fraction))
        )
        storage = {
            erc20_balance_slot(h): cfg.initial_token_balance for h in holders
        }
        alloc[address] = AccountData(code=token_code, storage=storage, balance=0)
        tokens.append(address)

    # AMM pools: each pairs two tokens; swaps mint the output token
    amms: List[Tuple[Address, Address, Address]] = []
    for p in range(cfg.n_amms):
        token_in = tokens[p % len(tokens)]
        token_out = tokens[(p + 1) % len(tokens)]
        address = _contract_address(2, p)
        alloc[address] = AccountData(
            code=amm_code(token_out),
            storage={
                AMM_RESERVE0_SLOT: cfg.amm_reserve,
                AMM_RESERVE1_SLOT: cfg.amm_reserve,
            },
        )
        amms.append((address, token_in, token_out))

    # NFT collections
    nfts: List[Address] = []
    nft_bytecode = nft_code()
    for c in range(cfg.n_nfts):
        address = _contract_address(3, c)
        alloc[address] = AccountData(
            code=nft_bytecode, storage={NFT_NEXT_ID_SLOT: 1}
        )
        nfts.append(address)

    # counting ERC-20 variants: matched pairs for conflict-taming studies
    # (same holder sets per index, so shared-vs-partitioned runs differ
    # only in counter layout)
    counter_tokens: List[Address] = []
    partitioned_tokens: List[Address] = []
    if cfg.n_counter_tokens or cfg.n_partitioned_tokens:
        shared_code = erc20_shared_counter_code()
        partitioned_code = erc20_partitioned_counter_code()
        pair_count = max(cfg.n_counter_tokens, cfg.n_partitioned_tokens)
        for t in range(pair_count):
            holders = rng.sample(
                eoas, max(1, int(len(eoas) * cfg.token_holder_fraction))
            )
            storage = {
                erc20_balance_slot(h): cfg.initial_token_balance for h in holders
            }
            if t < cfg.n_counter_tokens:
                address = _contract_address(5, t)
                alloc[address] = AccountData(
                    code=shared_code, storage=dict(storage), balance=0
                )
                counter_tokens.append(address)
            if t < cfg.n_partitioned_tokens:
                address = _contract_address(6, t)
                alloc[address] = AccountData(
                    code=partitioned_code, storage=dict(storage), balance=0
                )
                partitioned_tokens.append(address)

    # airdrop distributors
    airdrops: List[Address] = []
    airdrop_bytecode = airdrop_code()
    for d in range(cfg.n_airdrops):
        address = _contract_address(4, d)
        alloc[address] = AccountData(
            code=airdrop_bytecode,
            storage={AIRDROP_REMAINING_SLOT: cfg.airdrop_supply},
        )
        airdrops.append(address)

    genesis = genesis_snapshot(alloc)
    return Universe(
        config=cfg,
        genesis=genesis,
        eoas=eoas,
        tokens=tokens,
        amms=amms,
        nfts=nfts,
        airdrops=airdrops,
        counter_tokens=counter_tokens,
        partitioned_tokens=partitioned_tokens,
    )
