"""Shared fixtures: a small universe and helpers reused across test modules."""

import dataclasses

import pytest

from repro.chain.blockchain import Blockchain
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.universe import UniverseConfig, build_universe


@pytest.fixture(scope="session")
def _universe_base():
    """A compact world: fast to build, still exhibits hotspot structure.

    Built once per session; tests receive per-test copies with fresh nonce
    counters (see ``small_universe``) so each test starts from genesis.
    """
    return build_universe(
        UniverseConfig(
            n_eoas=200,
            n_tokens=6,
            n_amms=3,
            n_nfts=2,
            n_airdrops=2,
            token_holder_fraction=0.9,
            seed=11,
        )
    )


@pytest.fixture()
def small_universe(_universe_base):
    """Per-test view of the shared universe with reset nonce counters.

    The genesis snapshot is immutable and safely shared; the nonce map is
    the only mutable piece, so each test gets its own."""
    return dataclasses.replace(_universe_base, nonces={})


@pytest.fixture()
def small_generator(small_universe):
    return BlockWorkloadGenerator(
        small_universe,
        WorkloadConfig(txs_per_block=40, tx_count_jitter=0.0, seed=5),
    )


@pytest.fixture()
def genesis_chain(small_universe):
    return Blockchain(small_universe.genesis)


@pytest.fixture()
def build_chain(small_universe, small_generator):
    """Factory: seal ``count`` blocks from genesis, serially verified.

    Returns ``[(block, post_state), ...]`` in height order — the raw
    material the storage tests append, recover and compare."""
    from repro.core.baselines import SerialExecutor
    from repro.network.node import ProposerNode

    def build(count):
        serial = SerialExecutor()
        proposer = ProposerNode("store-test-proposer")
        parent_header = Blockchain(small_universe.genesis).genesis.header
        parent_state = small_universe.genesis
        out = []
        for _ in range(count):
            txs = small_generator.generate_block_txs()
            sealed = proposer.build_block(parent_header, parent_state, txs)
            sres = serial.execute_block(sealed.block, parent_state)
            out.append((sealed.block, sres.post_state))
            parent_header, parent_state = sealed.block.header, sres.post_state
        return out

    return build
