"""Tests for the analysis/report helpers."""

import os

import pytest

from repro.analysis.metrics import (
    SweepPoint,
    bucket_by_ratio,
    correlation,
    scaling_sweep_table,
)
from repro.analysis.report import (
    format_failures,
    format_histogram,
    format_series,
    format_table,
    write_report,
)
from repro.simcore.stats import RunStats


class TestMetrics:
    def test_sweep_point_from_samples(self):
        p = SweepPoint.from_samples(4, [2.0, 3.0, 4.0])
        assert p.x == 4
        assert p.summary.mean == 3.0

    def test_scaling_table_rows(self):
        points = [
            SweepPoint.from_samples(2, [1.5, 2.5]),
            SweepPoint.from_samples(4, [3.0, 5.0]),
        ]
        rows = scaling_sweep_table(points)
        assert rows[0]["threads"] == 2
        assert rows[1]["mean"] == 4.0
        assert rows[0]["accelerated"] == "100.0%"

    def test_bucket_by_ratio(self):
        pairs = [(0.1, 4.0), (0.15, 3.5), (0.5, 1.5), (0.95, 1.0)]
        rows = bucket_by_ratio(pairs, [0.0, 0.25, 0.5, 0.75, 1.0])
        assert rows[0]["blocks"] == 2
        assert rows[0]["mean_speedup"] == pytest.approx(3.75)
        # top-edge value clamps into the last bucket
        assert rows[-1]["blocks"] == 1

    def test_correlation_signs(self):
        down = [(i, 10 - i) for i in range(10)]
        up = [(i, i * 2) for i in range(10)]
        assert correlation(down) == pytest.approx(-1.0)
        assert correlation(up) == pytest.approx(1.0)

    def test_correlation_degenerate(self):
        assert correlation([(1, 5), (2, 5), (3, 5)]) == 0.0
        with pytest.raises(ValueError):
            correlation([(1, 1)])


class TestReport:
    def test_format_table_aligned(self):
        out = format_table([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_format_histogram_bars_scale(self):
        out = format_histogram([1, 1, 1, 2], [1, 2, 3], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10  # fullest bucket at full width
        assert lines[1].count("#") < 10

    def test_format_series(self):
        out = format_series([1, 2], [1.5, 2.5], "x", "y", title="S")
        assert "1.5" in out and "2.5" in out

    def test_write_report(self, tmp_path):
        path = write_report("unit", "hello\n", directory=str(tmp_path))
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"

    def test_write_report_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "envdir"))
        path = write_report("unit2", "x")
        assert str(tmp_path / "envdir") in path

    def test_format_failures_from_runstats(self):
        stats = RunStats(makespan=10.0, total_work=10.0, lanes=2)
        stats.failures = {"state_root_mismatch": 3, "profile_mismatch": 1}
        stats.worker_faults = 2
        stats.serial_fallbacks = 1
        out = format_failures(stats)
        lines = out.splitlines()
        # sorted by count descending, with shares of the total
        assert "state_root_mismatch" in lines[3] and "75%" in lines[3]
        assert "profile_mismatch" in lines[4] and "25%" in lines[4]
        assert "worker_faults: 2" in out
        assert "serial_fallbacks: 1" in out
        assert "exec_retries" not in out  # zero counters stay silent

    def test_format_failures_from_mapping(self):
        out = format_failures({"bad_block": 2}, title="rejections")
        assert out.splitlines()[0] == "rejections"
        assert "bad_block" in out and "100%" in out
        assert "worker_faults" not in out

    def test_format_failures_empty(self):
        stats = RunStats(makespan=1.0, total_work=1.0, lanes=1)
        assert "(no rows)" in format_failures(stats)
