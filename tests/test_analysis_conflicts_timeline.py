"""Tests for conflict-source analysis and the timeline renderer."""

import dataclasses

import pytest

from repro.analysis.conflicts import analyze_block_conflicts
from repro.analysis.timeline import render_timeline
from repro.network.node import ProposerNode
from repro.simcore.lanes import LaneGroup


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestConflictAnalysis:
    def test_counters_and_storage_dominate(self, sealed):
        """The §2.3 claim on our workload: conflicts come from counters
        (balances/nonces) and contract storage; code conflicts are absent."""
        breakdown = analyze_block_conflicts(sealed.block)
        assert breakdown.total_edges > 0
        assert breakdown.counter_fraction() + breakdown.storage_fraction() > 0.95
        assert breakdown.edges_by_kind.get("code", 0) == 0

    def test_hot_keys_include_contract_storage(self, sealed, small_universe):
        """Hotspot contract state (AMM reserves, NFT counters, airdrop
        supply) shows up among the most-conflicted keys.  Popular EOA
        balances (Zipf receivers) may rank alongside — both are exactly
        the counter/storage split the study describes."""
        breakdown = analyze_block_conflicts(sealed.block)
        assert breakdown.hot_keys
        assert breakdown.hot_keys[0][1] >= 2
        hot_contracts = (
            {a for a, _, _ in small_universe.amms}
            | set(small_universe.nfts)
            | set(small_universe.airdrops)
            | set(small_universe.tokens)
        )
        top_addresses = {key.address for key, _ in breakdown.hot_keys}
        assert top_addresses & hot_contracts

    def test_conflicting_fraction_bounded(self, sealed):
        breakdown = analyze_block_conflicts(sealed.block)
        assert 0.0 < breakdown.conflicting_tx_fraction <= 1.0

    def test_rows_render(self, sealed):
        breakdown = analyze_block_conflicts(sealed.block)
        rows = breakdown.rows()
        assert rows[0]["edges"] >= rows[-1]["edges"]
        assert all("%" in r["share"] for r in rows)

    def test_profileless_block_rejected(self, sealed):
        stripped = dataclasses.replace(sealed.block, profile=None)
        with pytest.raises(ValueError):
            analyze_block_conflicts(stripped)

    def test_empty_block(self, small_universe, genesis_chain):
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, []
        )
        breakdown = analyze_block_conflicts(sealed.block)
        assert breakdown.total_edges == 0
        assert breakdown.counter_fraction() == 0.0


class TestTimeline:
    def test_basic_rendering(self):
        group = LaneGroup(2, record_trace=True)
        group.run_on_earliest(10.0, tag="a")
        group.run_on_earliest(5.0, tag="b")
        group.run_on_earliest(5.0, tag="c")
        out = render_timeline(group, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("lane  0")
        assert "#" in lines[0]
        assert "100%" in lines[0]  # lane 0 busy for the whole span

    def test_labels(self):
        group = LaneGroup(1, record_trace=True)
        group.run_on_earliest(4.0, tag="x")
        out = render_timeline(group, width=10, label_of=lambda t: t.upper())
        assert "X" in out

    def test_requires_recording(self):
        with pytest.raises(ValueError):
            render_timeline(LaneGroup(1))

    def test_empty_group(self):
        group = LaneGroup(1, record_trace=True)
        assert "empty" in render_timeline(group)

    def test_idle_gaps_visible(self):
        group = LaneGroup(2, record_trace=True)
        group.lanes[0].run(10.0, record=True)
        group.lanes[1].run(2.0, record=True)
        out = render_timeline(group, width=20)
        lane1 = out.splitlines()[1]
        assert "." in lane1  # idle tail on the short lane

    def test_tracer_path_labels_cells_by_span_name(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        group = LaneGroup(1, tracer=tracer, span_namer=lambda tag: str(tag))
        group.run_on_earliest(4.0, tag="exec")
        out = render_timeline(group, width=10, tracer=tracer)
        assert "e" in out  # first char of the span name "exec"
        assert "#" not in out

    def test_tracer_and_trace_paths_paint_identical_bars(self):
        """Same schedule, both recording sources: identical busy cells."""
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        group = LaneGroup(
            2, record_trace=True, tracer=tracer, span_namer=lambda tag: "task"
        )
        for duration, tag in ((10.0, "a"), (5.0, "b"), (5.0, "c"), (3.0, "d")):
            group.run_on_earliest(duration, tag=tag)

        from_trace = render_timeline(group, width=24)
        from_tracer = render_timeline(group, width=24, tracer=tracer)
        # span name "task" paints "t" where the record_trace path paints
        # "#"; normalising the label makes the two renders byte-identical
        assert from_tracer.replace("t", "#") == from_trace

    def test_tracer_path_needs_no_record_trace(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        group = LaneGroup(1, tracer=tracer)
        group.run_on_earliest(2.0, tag="x")
        assert group.lanes[0].trace == []  # nothing recorded on the lane
        out = render_timeline(group, width=8, tracer=tracer)
        assert "t" in out  # default span name "task"
