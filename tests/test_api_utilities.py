"""Tests for the library-facade utilities: snapshot serialization,
gas estimation, and the chain transaction index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import Address
from repro.evm.asm import asm
from repro.evm.interpreter import EVM, ExecutionContext, InvalidTransaction
from repro.network.node import ProposerNode, ValidatorNode
from repro.state.account import AccountData
from repro.state.serialize import (
    SnapshotFormatError,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.state.statedb import genesis_snapshot
from repro.txpool.transaction import Transaction

ETHER = 10**18
SENDER = Address.from_int(0x77)
CONTRACT = Address.from_int(0x88)


class TestSnapshotSerialization:
    def make(self):
        return genesis_snapshot(
            {
                SENDER: AccountData(balance=5 * ETHER, nonce=3),
                CONTRACT: AccountData(
                    code=b"\x60\x00", storage={1: 42, 2**200: 7}
                ),
            }
        )

    def test_round_trip_preserves_root(self):
        snap = self.make()
        rebuilt = snapshot_from_json(snapshot_to_json(snap))
        assert rebuilt.state_root() == snap.state_root()
        assert rebuilt.account(SENDER).balance == 5 * ETHER
        assert rebuilt.account(CONTRACT).storage[2**200] == 7

    def test_universe_genesis_round_trips(self, small_universe):
        text = snapshot_to_json(small_universe.genesis)
        rebuilt = snapshot_from_json(text)
        assert rebuilt.state_root() == small_universe.genesis.state_root()

    def test_tampered_root_detected(self):
        text = snapshot_to_json(self.make())
        tampered = text.replace('"stateRoot": "', '"stateRoot": "00', 1)
        with pytest.raises(SnapshotFormatError, match="root mismatch"):
            snapshot_from_json(tampered)

    def test_verify_can_be_skipped(self):
        text = snapshot_to_json(self.make())
        tampered = text.replace('"stateRoot": "', '"stateRoot": "00', 1)
        snapshot_from_json(tampered, verify_root=False)  # no raise

    def test_garbage_rejected(self):
        with pytest.raises(SnapshotFormatError):
            snapshot_from_json("[]")
        with pytest.raises(SnapshotFormatError):
            snapshot_from_json("{nope")

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.integers(1, 50),
            st.tuples(st.integers(0, 10**20), st.integers(0, 5)),
            max_size=10,
        )
    )
    def test_property_round_trip(self, raw):
        alloc = {
            Address.from_int(0x1000 + k): AccountData(balance=b, nonce=n)
            for k, (b, n) in raw.items()
        }
        snap = genesis_snapshot(alloc)
        rebuilt = snapshot_from_json(snapshot_to_json(snap))
        assert rebuilt.state_root() == snap.state_root()


class TestEstimateGas:
    def test_plain_transfer_estimates_21000(self):
        snap = genesis_snapshot({SENDER: AccountData(balance=ETHER)})
        tx = Transaction(SENDER, Address.from_int(0x99), 100, b"", 1_000_000, 0, 0)
        estimate = EVM().estimate_gas(snap, tx, ExecutionContext())
        assert estimate == 21000

    def test_storage_write_estimate_tight(self):
        code = asm([1, 5, "SSTORE", "STOP"])
        snap = genesis_snapshot(
            {SENDER: AccountData(balance=ETHER), CONTRACT: AccountData(code=code)}
        )
        tx = Transaction(SENDER, CONTRACT, 0, b"", 1_000_000, 0, 0)
        evm = EVM()
        estimate = evm.estimate_gas(snap, tx, ExecutionContext())
        assert estimate == 21000 + 3 + 3 + 20000
        # and it is truly minimal: one unit less fails
        from repro.state.statedb import StateDB
        import dataclasses

        lower = dataclasses.replace(tx, gas_limit=estimate - 1)
        result = evm.apply_transaction(StateDB(snap), lower, ExecutionContext())
        assert not result.success

    def test_impossible_tx_raises(self):
        code = asm([0, 0, "REVERT"])
        snap = genesis_snapshot(
            {SENDER: AccountData(balance=ETHER), CONTRACT: AccountData(code=code)}
        )
        tx = Transaction(SENDER, CONTRACT, 0, b"", 1_000_000, 0, 0)
        with pytest.raises(InvalidTransaction):
            EVM().estimate_gas(snap, tx, ExecutionContext())

    def test_estimation_does_not_mutate_state(self):
        snap = genesis_snapshot({SENDER: AccountData(balance=ETHER)})
        tx = Transaction(SENDER, Address.from_int(0x99), 100, b"", 1_000_000, 0, 0)
        root_before = snap.state_root()
        EVM().estimate_gas(snap, tx, ExecutionContext())
        assert snap.state_root() == root_before
        assert snap.account(SENDER).nonce == 0


class TestTransactionIndex:
    def test_find_transaction_on_canonical_chain(
        self, small_universe, small_generator, genesis_chain
    ):
        validator = ValidatorNode("idx", small_universe.genesis)
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            validator.chain.genesis.header, small_universe.genesis, txs
        )
        assert validator.receive_blocks([sealed.block]).accepted
        target = sealed.block.transactions[3]
        found = validator.chain.find_transaction(target.hash)
        assert found is not None
        block, index, receipt = found
        assert block is sealed.block
        assert index == 3
        assert receipt.tx_hash == target.hash

    def test_unknown_hash_returns_none(self, small_universe):
        from repro.common.hashing import hash_of

        validator = ValidatorNode("idx", small_universe.genesis)
        assert validator.chain.find_transaction(hash_of(b"ghost")) is None

    def test_uncle_only_tx_not_canonical(
        self, small_universe, small_generator, genesis_chain
    ):
        """A transaction that only appears in a non-canonical sibling is
        not reported as canonical."""
        from repro.network.dissemination import ForkSimulator

        validator = ValidatorNode("idx", small_universe.genesis)
        txs = small_generator.generate_block_txs()
        # sibling B gets a reduced view: some of A's txs are absent from B;
        # but both are at the same height and A (first) is canonical, so
        # every tx of A resolves to A
        forks = ForkSimulator(2, seed=9, pool_overlap=0.6).propose_forks(
            validator.chain.genesis.header, small_universe.genesis, txs
        )
        outcome = validator.receive_blocks(forks.blocks)
        assert len(outcome.accepted) == 2
        canonical = validator.chain.head
        for tx in canonical.transactions:
            block, _, _ = validator.chain.find_transaction(tx.hash)
            assert block.hash == canonical.hash
