"""Block-STM proposer engine: scheduling, convergence, oracle semantics.

The engine's contract (and what this module pins down):

* **Serializability in preset order** — replaying the committed
  transactions serially in commit order reproduces the materialised
  state exactly, under arbitrary contention and arbitrary fuzzed wave
  schedules.
* **Bit-identity across substrates** — the same workload produces the
  same sealed content on ``sim | serial | thread | process``; all
  scheduling decisions are parent-side.
* **Suspension, not abort storms** — hotspot chains convert stale-read
  retries into ESTIMATE suspensions; incarnations stay low.
* **Multiversion read witnesses** — every non-base read names an actual
  committed writer; the ``unwitnessed_read`` oracle rule (semantics
  picked by strategy) catches fabricated versions that the global
  snapshot-counter rules cannot see.
"""

import pytest

from repro.check.oracle import verify_commit_order, verify_schedule
from repro.common.types import Address
from repro.core.blockstm import BlockSTMProposer
from repro.core.occ_wsi import ProposerConfig
from repro.core.strategies import STRATEGY_CHOICES, build_proposer
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.access import balance_key
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

pytestmark = pytest.mark.blockstm

ETHER = 10**18
CTX = ExecutionContext(block_number=1, timestamp=12)


def simple_world(n=12):
    eoas = [Address.from_int(0x200 + i) for i in range(n)]
    return eoas, genesis_snapshot({a: AccountData(balance=ETHER) for a in eoas})


def payment(sender, to, nonce=0, price=10, value=100):
    return Transaction(sender, to, value, b"", 60_000, price, nonce)


def run_blockstm(base, txs, lanes=4, probe=None, backend=None, **cfg):
    pool = TxPool()
    pool.add_many(sorted(txs, key=lambda t: t.nonce))
    proposer = BlockSTMProposer(
        config=ProposerConfig(lanes=lanes, strategy="block-stm", **cfg),
        probe=probe,
        backend=backend,
    )
    return proposer.propose(base, pool, CTX), pool


def replay_serially(base, committed):
    db = StateDB(base)
    evm = EVM()
    for c in committed:
        evm.apply_transaction(db, c.tx, CTX)
    return db.commit()


class TestPacking:
    def test_packs_all_independent_txs(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 6]) for i in range(6)]
        result, pool = run_blockstm(base, txs)
        assert len(result.committed) == 6
        assert len(pool) == 0
        assert result.stats.aborts == 0
        assert result.strategy == "block-stm"

    def test_versions_are_sequential(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 6]) for i in range(6)]
        result, _ = run_blockstm(base, txs)
        assert [c.version for c in result.committed] == [1, 2, 3, 4, 5, 6]
        assert all(c.snapshot_version == c.version - 1 for c in result.committed)

    def test_gas_limit_returns_suffix_to_pool(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 6]) for i in range(6)]
        result, pool = run_blockstm(base, txs, gas_limit=21000 * 2)
        assert 2 <= len(result.committed) <= 3
        assert len(pool) == 6 - len(result.committed)

    def test_max_txs_respected(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 6]) for i in range(6)]
        result, _ = run_blockstm(base, txs, max_txs=3)
        assert len(result.committed) == 3

    def test_same_sender_nonce_order_in_block(self):
        eoas, base = simple_world()
        txs = [payment(eoas[0], eoas[1], nonce=n, price=10 + n) for n in range(4)]
        result, _ = run_blockstm(base, txs)
        assert [c.tx.nonce for c in result.committed] == [0, 1, 2, 3]

    def test_invalid_tx_dropped(self):
        eoas, base = simple_world()
        bad = payment(eoas[0], eoas[1], value=100 * ETHER)  # unaffordable
        good = payment(eoas[2], eoas[3])
        result, _ = run_blockstm(base, [bad, good])
        assert len(result.committed) == 1
        assert result.invalid_dropped == 1

    def test_empty_pool(self):
        _, base = simple_world()
        result, _ = run_blockstm(base, [])
        assert result.committed == []
        assert result.stats.makespan == 0.0


class TestSuspension:
    """Hotspot chains become suspensions, not abort storms."""

    def hot_chain(self, n=8):
        eoas, base = simple_world(n + 2)
        hot = eoas[-1]
        return base, hot, [payment(eoas[i], hot) for i in range(n)]

    def test_hot_chain_commits_fully(self):
        base, hot, txs = self.hot_chain()
        result, _ = run_blockstm(base, txs, lanes=8)
        assert len(result.committed) == 8
        assert result.final_state().account(hot).balance == ETHER + 8 * 100
        # the dependency chain surfaced as estimates: suspensions and/or
        # validation aborts happened, but re-execution converged fast
        extra = result.stats.extra
        assert extra["suspensions"] + result.stats.aborts > 0
        assert extra["max_incarnation"] <= 3

    def test_suspensions_cheaper_than_occ_aborts(self):
        """Same hot chain: Block-STM must re-execute strictly less than
        OCC-WSI aborts-and-retries (the design claim, in miniature)."""
        from repro.core.occ_wsi import OCCWSIProposer

        base, _, txs = self.hot_chain()
        stm, _ = run_blockstm(base, txs, lanes=8)
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        occ = OCCWSIProposer(config=ProposerConfig(lanes=8)).propose(base, pool, CTX)
        assert stm.stats.aborts <= occ.stats.aborts
        assert stm.stats.total_work <= occ.stats.total_work

    def test_single_lane_never_suspends(self):
        base, _, txs = self.hot_chain()
        result, _ = run_blockstm(base, txs, lanes=1)
        assert result.stats.aborts == 0
        assert result.stats.extra["suspensions"] == 0

    def test_serializable_under_contention(self):
        base, _, txs = self.hot_chain()
        txs += [payment(txs[0].sender, txs[1].to, nonce=1)]
        result, _ = run_blockstm(base, txs, lanes=8)
        assert len(result.committed) == 9
        assert (
            replay_serially(base, result.committed).state_root()
            == result.final_state().state_root()
        )


class TestFuzzedSchedules:
    """Probe-steered wave schedules: every interleaving converges to the
    same block and passes the full conformance chain."""

    def test_width_one_waves_match_default(self, small_universe, small_generator):
        from repro.exec.hooks import ScheduleProbe

        class WidthOne(ScheduleProbe):
            def blockstm_wave_width(self, wave_index, max_width):
                return 1

        txs = small_generator.generate_block_txs()
        default, _ = run_blockstm(small_universe.genesis, txs, lanes=8)
        narrow, _ = run_blockstm(small_universe.genesis, txs, lanes=8, probe=WidthOne())
        assert [c.tx.hash for c in default.committed] == [
            c.tx.hash for c in narrow.committed
        ]
        assert (
            default.final_state().state_root() == narrow.final_state().state_root()
        )

    @pytest.mark.fuzz
    def test_seeded_schedules_conformant(self):
        from repro.check.fuzzer import ConformanceScenario, FuzzSchedule, run_schedule

        scenario = ConformanceScenario.hotspot(n_txs=12, seed=5, strategy="block-stm")
        for seed in range(12):
            failure = run_schedule(scenario, FuzzSchedule(seed=seed))
            assert failure is None, failure.describe()


class TestBackendBitIdentity:
    def _signature(self, result):
        return (
            tuple(bytes(c.tx.hash) for c in result.committed),
            tuple(
                (c.version, c.result.success, c.result.gas_used)
                for c in result.committed
            ),
            bytes(result.final_state(coinbase=CTX.coinbase).state_root()),
        )

    @pytest.mark.slow
    def test_identical_across_backends(self, small_universe, small_generator):
        from repro.exec import get_backend

        txs = small_generator.generate_block_txs()
        reference, _ = run_blockstm(small_universe.genesis, txs, lanes=4)
        want = self._signature(reference)
        for name in ("serial", "thread", "process"):
            backend = get_backend(name, 2)
            try:
                result, _ = run_blockstm(
                    small_universe.genesis, txs, lanes=4, backend=backend
                )
                assert self._signature(result) == want, name
            finally:
                backend.close()


class TestOracleSemantics:
    def build_proposal(self):
        eoas, base = simple_world()
        hot = eoas[-1]
        txs = [payment(eoas[i], hot) for i in range(4)]
        txs.append(payment(eoas[4], eoas[5]))
        result, _ = run_blockstm(base, txs, lanes=4)
        assert len(result.committed) == 5
        return base, result

    def test_commit_order_clean(self):
        _, result = self.build_proposal()
        report = verify_commit_order(result)
        assert report.ok, report.summary()
        assert report.strategy == "block-stm"

    def test_unwitnessed_read_flagged(self):
        """A read version pointing at a position that never wrote the key
        passes the snapshot rules but fails the multiversion witness."""
        _, result = self.build_proposal()
        # the disjoint payment read its sender balance from base (v0); no
        # committed tx wrote that key, so claiming v1 is unwitnessed
        victim = result.committed[-1]
        key = balance_key(victim.tx.sender)
        assert victim.rw.reads.get(key) == 0
        victim.rw.reads[key] = 1
        report = verify_commit_order(result)
        assert not report.ok
        assert any(v.kind == "unwitnessed_read" for v in report.violations)
        assert report.summary().startswith("[block-stm]")

    def test_snapshot_semantics_misses_it(self):
        """The identical mutation under occ-wsi (snapshot) semantics is
        invisible — which is exactly why block-stm needs the witness rule."""
        _, result = self.build_proposal()
        victim = result.committed[-1]
        key = balance_key(victim.tx.sender)
        victim.rw.reads[key] = 1
        object.__setattr__(result, "strategy", "occ-wsi")
        report = verify_commit_order(result)
        assert not any(v.kind == "unwitnessed_read" for v in report.violations)

    def test_verify_schedule_names_strategy(self, small_universe, small_generator):
        from repro.core.proposer import seal_block
        from repro.chain.blockchain import Blockchain

        txs = small_generator.generate_block_txs()
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        engine = build_proposer(ProposerConfig(lanes=4, strategy="block-stm"))
        genesis_header = Blockchain(small_universe.genesis).genesis.header
        ctx = ExecutionContext(
            block_number=1, timestamp=genesis_header.timestamp + 12
        )
        proposal = engine.propose(small_universe.genesis, pool, ctx)
        sealed = seal_block(
            proposal,
            genesis_header,
            coinbase=ctx.coinbase,
            timestamp=ctx.timestamp,
            gas_limit=engine.config.gas_limit,
        )
        report = verify_schedule(sealed.block, strategy="block-stm")
        assert report.ok, report.summary()
        assert report.strategy == "block-stm"
        assert report.summary().startswith("[block-stm]")


class TestStrategyRegistry:
    def test_choices_cover_engines(self):
        assert set(STRATEGY_CHOICES) == {"occ-wsi", "two-phase", "block-stm"}

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="block-stm"):
            build_proposer(ProposerConfig(strategy="speculative-magic"))

    def test_builder_dispatch(self):
        from repro.core.occ_wsi import OCCWSIProposer
        from repro.core.strategies import TwoPhaseProposer

        assert isinstance(
            build_proposer(ProposerConfig(strategy="occ-wsi")), OCCWSIProposer
        )
        assert isinstance(
            build_proposer(ProposerConfig(strategy="two-phase")), TwoPhaseProposer
        )
        assert isinstance(
            build_proposer(ProposerConfig(strategy="block-stm")), BlockSTMProposer
        )
