"""Chain-layer tests: block structures, roots, fork handling, uncles."""

import pytest

from repro.chain.block import (
    Block,
    BlockHeader,
    BlockProfile,
    Receipt,
    TxProfileEntry,
    receipts_root,
    transactions_root,
)
from repro.chain.blockchain import Blockchain, ChainError, GENESIS_PARENT
from repro.common.hashing import Hash32, hash_of
from repro.common.types import Address
from repro.state.access import ReadWriteSet
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.transaction import Transaction

A1 = Address.from_int(1)
COINBASE = Address.from_int(0xBB)


def make_tx(nonce=0):
    return Transaction(A1, Address.from_int(2), 1, b"", 21000, 1, nonce)


def make_header(parent, state_root, txs=(), number=None):
    return BlockHeader(
        parent_hash=parent.hash if isinstance(parent, (Block, BlockHeader)) else parent,
        number=(
            number
            if number is not None
            else (parent.number + 1 if isinstance(parent, (Block, BlockHeader)) else 1)
        ),
        state_root=state_root,
        transactions_root=transactions_root(txs),
        receipts_root=receipts_root(()),
        gas_used=0,
        gas_limit=30_000_000,
        coinbase=COINBASE,
        timestamp=12,
    )


@pytest.fixture()
def base_state():
    return genesis_snapshot({A1: AccountData(balance=10**18)})


@pytest.fixture()
def chain(base_state):
    return Blockchain(base_state)


class TestHeaderAndRoots:
    def test_header_hash_deterministic(self, base_state):
        h1 = make_header(GENESIS_PARENT, base_state.state_root())
        h2 = make_header(GENESIS_PARENT, base_state.state_root())
        assert h1.hash == h2.hash

    def test_header_hash_sensitive_to_fields(self, base_state):
        import dataclasses

        h1 = make_header(GENESIS_PARENT, base_state.state_root())
        h2 = dataclasses.replace(h1, timestamp=13)
        assert h1.hash != h2.hash

    def test_transactions_root_order_sensitive(self):
        t1, t2 = make_tx(0), make_tx(1)
        assert transactions_root([t1, t2]) != transactions_root([t2, t1])

    def test_empty_roots_stable(self):
        assert transactions_root(()) == transactions_root([])
        assert receipts_root(()) == receipts_root([])

    def test_receipts_root_covers_status(self):
        r_ok = Receipt(hash_of(b"t"), True, 21000, 21000, 0)
        r_bad = Receipt(hash_of(b"t"), False, 21000, 21000, 0)
        assert receipts_root([r_ok]) != receipts_root([r_bad])


class TestBlockStructure:
    def test_validate_structure_passes_for_consistent_block(self, base_state):
        t = make_tx()
        header = make_header(GENESIS_PARENT, base_state.state_root(), [t])
        block = Block(header, (t,))
        block.validate_structure()

    def test_tx_root_mismatch_detected(self, base_state):
        t = make_tx()
        header = make_header(GENESIS_PARENT, base_state.state_root(), [])
        block = Block(header, (t,))
        with pytest.raises(ValueError, match="transactions root"):
            block.validate_structure()

    def test_profile_alignment_checked(self, base_state):
        t = make_tx()
        header = make_header(GENESIS_PARENT, base_state.state_root(), [t])
        wrong_entry = TxProfileEntry(
            tx_hash=hash_of(b"other"),
            rw=ReadWriteSet().freeze(),
            gas_used=21000,
            success=True,
        )
        block = Block(header, (t,), profile=BlockProfile((wrong_entry,)))
        with pytest.raises(ValueError, match="order mismatch"):
            block.validate_structure()

    def test_profile_count_checked(self, base_state):
        t = make_tx()
        header = make_header(GENESIS_PARENT, base_state.state_root(), [t])
        block = Block(header, (t,), profile=BlockProfile(()))
        with pytest.raises(ValueError, match="count"):
            block.validate_structure()


def child_block(chain, parent_block, base_state, nudge=0):
    """Build an empty child block whose post-state equals the parent state."""
    state = chain.state_at(parent_block.hash)
    header = BlockHeader(
        parent_hash=parent_block.hash,
        number=parent_block.number + 1,
        state_root=state.state_root(),
        transactions_root=transactions_root(()),
        receipts_root=receipts_root(()),
        gas_used=0,
        gas_limit=30_000_000,
        coinbase=COINBASE,
        timestamp=12 + nudge,
    )
    return Block(header, ()), state


class TestBlockchain:
    def test_genesis_is_head(self, chain):
        assert chain.head.number == 0
        assert chain.height() == 0
        assert len(chain) == 1

    def test_add_block_advances_head(self, chain, base_state):
        block, state = child_block(chain, chain.genesis, base_state)
        assert chain.add_block(block, state) is True
        assert chain.head is block

    def test_duplicate_rejected(self, chain, base_state):
        block, state = child_block(chain, chain.genesis, base_state)
        chain.add_block(block, state)
        with pytest.raises(ChainError, match="duplicate"):
            chain.add_block(block, state)

    def test_unknown_parent_rejected(self, chain, base_state):
        orphan_header = make_header(Hash32(b"\x11" * 32), base_state.state_root())
        with pytest.raises(ChainError, match="unknown parent"):
            chain.add_block(Block(orphan_header, ()), base_state)

    def test_wrong_state_root_rejected(self, chain, base_state):
        block, state = child_block(chain, chain.genesis, base_state)
        db = StateDB(state)
        db.add_balance(A1, 1)
        wrong = db.commit()
        with pytest.raises(ChainError, match="root"):
            chain.add_block(block, wrong)

    def test_fork_same_height_first_seen_wins(self, chain, base_state):
        b1, s1 = child_block(chain, chain.genesis, base_state, nudge=0)
        b2, s2 = child_block(chain, chain.genesis, base_state, nudge=1)
        assert chain.add_block(b1, s1) is True
        assert chain.add_block(b2, s2) is False  # same height, not new head
        assert chain.head is b1
        assert len(chain.blocks_at_height(1)) == 2

    def test_uncles_tracked(self, chain, base_state):
        b1, s1 = child_block(chain, chain.genesis, base_state, nudge=0)
        b2, s2 = child_block(chain, chain.genesis, base_state, nudge=1)
        chain.add_block(b1, s1)
        chain.add_block(b2, s2)
        uncles = chain.uncles_at(1)
        assert [u.hash for u in uncles] == [b2.hash]
        assert chain.uncle_count() == 1

    def test_canonical_chain_walks_parents(self, chain, base_state):
        parent = chain.genesis
        for _ in range(3):
            block, state = child_block(chain, parent, base_state)
            chain.add_block(block, state)
            parent = block
        numbers = [b.number for b in chain.canonical_chain()]
        assert numbers == [0, 1, 2, 3]

    def test_longer_fork_reorgs_head(self, chain, base_state):
        b1, s1 = child_block(chain, chain.genesis, base_state, nudge=0)
        b2, s2 = child_block(chain, chain.genesis, base_state, nudge=1)
        chain.add_block(b1, s1)
        chain.add_block(b2, s2)
        assert chain.head is b1
        # extend the b2 branch: it becomes the longest chain
        b3, s3 = child_block(chain, b2, base_state)
        assert chain.add_block(b3, s3) is True
        assert chain.head is b3
        assert chain.canonical_hash_at(1) == b2.hash
        assert [u.hash for u in chain.uncles_at(1)] == [b1.hash]

    def test_number_gap_rejected(self, chain, base_state):
        state = chain.head_state
        header = make_header(chain.genesis.header, state.state_root(), number=5)
        with pytest.raises(ChainError, match="gap"):
            chain.add_block(Block(header, ()), state)

    def test_state_at_returns_snapshot(self, chain, base_state):
        block, state = child_block(chain, chain.genesis, base_state)
        chain.add_block(block, state)
        assert chain.state_at(block.hash) is state
        assert chain.state_at(Hash32(b"\x99" * 32)) is None
