"""Logs-bloom tests: filter semantics and end-to-end header verification."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.bloom import BLOOM_BYTES, Bloom, bloom_from_logs
from repro.common.types import Address
from repro.core.validator import ParallelValidator
from repro.evm.interpreter import Log
from repro.network.node import ProposerNode


class TestBloomSemantics:
    def test_empty_contains_nothing_definitely(self):
        b = Bloom()
        assert not b.might_contain(b"anything")
        assert b.bit_count() == 0

    def test_added_item_always_found(self):
        b = Bloom()
        b.add(b"hello")
        assert b.might_contain(b"hello")

    def test_three_bits_per_item(self):
        b = Bloom()
        b.add(b"item")
        assert 1 <= b.bit_count() <= 3  # hash collisions may overlap bits

    def test_round_trip_bytes(self):
        b = Bloom()
        b.add(b"x")
        assert Bloom.from_bytes(b.to_bytes()) == b
        assert len(b.to_bytes()) == BLOOM_BYTES

    def test_union(self):
        b1, b2 = Bloom(), Bloom()
        b1.add(b"a")
        b2.add(b"b")
        u = b1.union(b2)
        assert u.might_contain(b"a") and u.might_contain(b"b")

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            Bloom(-1)
        with pytest.raises(ValueError):
            Bloom.from_bytes(b"\x00" * 10)

    def test_log_addresses_and_topics_indexed(self):
        addr = Address.from_int(0xABC)
        log = Log(addr, (0x1234, 0x5678), b"payload")
        bloom = bloom_from_logs([log])
        assert bloom.might_contain(bytes(addr))
        assert bloom.might_contain((0x1234).to_bytes(32, "big"))
        assert bloom.might_contain((0x5678).to_bytes(32, "big"))
        # data is NOT indexed (Ethereum semantics)
        assert not bloom.might_contain(b"payload")

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.binary(min_size=1, max_size=16), max_size=20), st.binary(min_size=17, max_size=20))
    def test_no_false_negatives(self, members, probe):
        b = Bloom()
        for m in members:
            b.add(m)
        for m in members:
            assert b.might_contain(m)
        # probes longer than any member cannot be members; they may still
        # false-positive, but with 2048 bits and <=20 items it is unlikely —
        # check the definitely-absent direction statistically instead
        if not members:
            assert not b.might_contain(probe)


class TestHeaderBloom:
    def test_sealed_header_carries_bloom(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        # the workload's contracts LOG, so the bloom is non-empty
        assert sealed.block.header.logs_bloom != b"\x00" * BLOOM_BYTES

    def test_validator_rejects_tampered_bloom(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        tampered = dataclasses.replace(
            sealed.block,
            header=dataclasses.replace(
                sealed.block.header, logs_bloom=b"\xff" * BLOOM_BYTES
            ),
        )
        res = ParallelValidator().validate_block(tampered, small_universe.genesis)
        assert not res.accepted
        assert "bloom" in res.reason

    def test_contract_address_queryable_via_bloom(
        self, small_universe, small_generator, genesis_chain
    ):
        """A client filtering for the hot AMM finds the block plausible."""
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        bloom = Bloom.from_bytes(sealed.block.header.logs_bloom)
        touched = {t.to for t in txs if t.tag == "amm"}
        successful_logs = {
            log.address
            for c in sealed.proposal.committed
            for log in c.result.logs
        }
        for address in touched & successful_logs:
            assert bloom.might_contain(bytes(address))
