"""Reward economics and uncle policy (§3.4): proposer/validator symmetry."""

import dataclasses

import pytest

from repro.chain.params import ChainParams, DEFAULT_CHAIN_PARAMS, ETHEREUM_POW_PARAMS, ETHER
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode, ValidatorNode


class TestChainParams:
    def test_default_is_rewardless(self):
        assert DEFAULT_CHAIN_PARAMS.block_reward == 0
        assert DEFAULT_CHAIN_PARAMS.nephew_reward(2) == 0
        assert DEFAULT_CHAIN_PARAMS.uncle_reward(10, 9) == 0

    def test_pow_uncle_reward_schedule(self):
        p = ETHEREUM_POW_PARAMS
        r = p.block_reward
        assert p.uncle_reward(10, 9) == r * 7 // 8  # depth 1
        assert p.uncle_reward(10, 8) == r * 6 // 8
        assert p.uncle_reward(10, 3) == r * 1 // 8  # depth 7 (max)
        assert p.uncle_reward(10, 2) == 0  # too deep
        assert p.uncle_reward(10, 10) == 0  # same height invalid

    def test_nephew_reward(self):
        p = ETHEREUM_POW_PARAMS
        assert p.nephew_reward(1) == p.block_reward // 32
        assert p.nephew_reward(2) == 2 * (p.block_reward // 32)
        assert p.nephew_reward(0) == 0

    def test_validate_uncle_window(self):
        p = ChainParams(max_uncle_depth=6)
        assert p.validate_uncle(100, 99)
        assert p.validate_uncle(100, 93)
        assert not p.validate_uncle(100, 92)
        assert not p.validate_uncle(100, 100)
        assert not p.validate_uncle(100, 101)


class TestRewardedChain:
    def propose_and_validate(self, universe, generator, params, uncles=()):
        proposer = ProposerNode("miner", params=params)
        validator = ParallelValidator(config=ValidatorConfig(params=params))
        txs = generator.generate_block_txs()
        from repro.chain.blockchain import Blockchain

        genesis = Blockchain(universe.genesis).genesis
        sealed = proposer.build_block(
            genesis.header, universe.genesis, txs, uncles=uncles
        )
        res = validator.validate_block(sealed.block, universe.genesis)
        return proposer, sealed, res

    def test_block_reward_credited_and_verified(self, small_universe, small_generator):
        proposer, sealed, res = self.propose_and_validate(
            small_universe, small_generator, ETHEREUM_POW_PARAMS
        )
        assert res.accepted, res.reason
        balance = res.post_state.account(proposer.coinbase).balance
        assert balance == sealed.proposal.total_fees + 2 * ETHER

    def test_params_mismatch_rejected(self, small_universe, small_generator):
        """A validator with different consensus params rejects the block —
        the root includes the reward the validator does not expect."""
        proposer = ProposerNode("miner", params=ETHEREUM_POW_PARAMS)
        validator = ParallelValidator(
            config=ValidatorConfig(params=DEFAULT_CHAIN_PARAMS)
        )
        from repro.chain.blockchain import Blockchain

        genesis = Blockchain(small_universe.genesis).genesis
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(genesis.header, small_universe.genesis, txs)
        res = validator.validate_block(sealed.block, small_universe.genesis)
        assert not res.accepted
        assert "state root" in res.reason

    def test_uncle_rewards_flow(self, small_universe, small_generator):
        """Build a fork, then include the losing sibling as an uncle in the
        next block; both coinbases get paid and the validator agrees."""
        params = ETHEREUM_POW_PARAMS
        alice = ProposerNode("alice", params=params)
        bob = ProposerNode("bob", params=params)
        validator = ValidatorNode(
            "val",
            small_universe.genesis,
        )
        # ValidatorNode pipelines with default params; use ParallelValidator
        checker = ParallelValidator(config=ValidatorConfig(params=params))

        genesis_header = validator.chain.genesis.header
        txs = small_generator.generate_block_txs()
        sealed_a = alice.build_block(genesis_header, small_universe.genesis, txs)
        # bob proposes a sibling at the same height with an empty tx view
        sealed_b = bob.build_block(genesis_header, small_universe.genesis, [])

        res_a = checker.validate_block(sealed_a.block, small_universe.genesis)
        assert res_a.accepted, res_a.reason

        # alice extends her chain, embedding bob's block as an uncle
        txs2 = small_generator.generate_block_txs()
        sealed_2 = alice.build_block(
            sealed_a.block.header,
            res_a.post_state,
            txs2,
            uncles=(sealed_b.block.header,),
        )
        res_2 = checker.validate_block(sealed_2.block, res_a.post_state)
        assert res_2.accepted, res_2.reason

        # uncle coinbase earned 7/8 of the block reward (depth 1)
        uncle_balance = res_2.post_state.account(bob.coinbase).balance
        assert uncle_balance == params.block_reward * 7 // 8
        # alice earned: 2 block rewards + fees + one nephew reward
        alice_balance = res_2.post_state.account(alice.coinbase).balance
        expected = (
            2 * params.block_reward
            + sealed_a.proposal.total_fees
            + sealed_2.proposal.total_fees
            + params.nephew_reward(1)
        )
        assert alice_balance == expected

    def test_too_many_uncles_rejected_at_seal(self, small_universe, small_generator):
        params = dataclasses.replace(ETHEREUM_POW_PARAMS, max_uncles=1)
        alice = ProposerNode("alice", params=params)
        bob = ProposerNode("bob", params=params)
        carol = ProposerNode("carol", params=params)
        from repro.chain.blockchain import Blockchain

        genesis = Blockchain(small_universe.genesis).genesis
        u1 = bob.build_block(genesis.header, small_universe.genesis, [])
        u2 = carol.build_block(genesis.header, small_universe.genesis, [])
        base = alice.build_block(genesis.header, small_universe.genesis, [])
        with pytest.raises(ValueError, match="too many uncles"):
            alice.build_block(
                base.block.header,
                base.post_state,
                [],
                uncles=(u1.block.header, u2.block.header),
            )

    def test_stale_uncle_rejected_by_validator(self, small_universe, small_generator):
        """Tamper a sealed block to claim an out-of-window uncle."""
        params = ETHEREUM_POW_PARAMS
        alice = ProposerNode("alice", params=params)
        from repro.chain.blockchain import Blockchain

        genesis = Blockchain(small_universe.genesis).genesis
        txs = small_generator.generate_block_txs()
        sealed = alice.build_block(genesis.header, small_universe.genesis, txs)
        fake_uncle = dataclasses.replace(
            sealed.block.header, number=sealed.block.number, proposer_id="fake"
        )
        tampered = dataclasses.replace(sealed.block, uncles=(fake_uncle,))
        validator = ParallelValidator(config=ValidatorConfig(params=params))
        res = validator.validate_block(tampered, small_universe.genesis)
        assert not res.accepted
        assert "uncle" in res.reason

    def test_gas_over_limit_rejected(self, small_universe, small_generator):
        proposer = ProposerNode("alice")
        from repro.chain.blockchain import Blockchain

        genesis = Blockchain(small_universe.genesis).genesis
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(genesis.header, small_universe.genesis, txs)
        bloated = dataclasses.replace(
            sealed.block,
            header=dataclasses.replace(
                sealed.block.header,
                gas_limit=sealed.block.header.gas_used - 1,
            ),
        )
        res = ParallelValidator().validate_block(bloated, small_universe.genesis)
        assert not res.accepted
        assert "exceeds limit" in res.reason
