"""Differential oracle: sealed blocks vs a fresh serial replay.

Honest blocks must diff clean; every class of tampering — header roots,
receipts, profile entries, proposer bookkeeping — must surface as a typed
:class:`~repro.check.differential.DiffFinding` naming the divergence.
"""

import dataclasses

import pytest

from repro.chain.block import BlockProfile
from repro.check.differential import diff_block, diff_proposal
from repro.common.types import Hash32
from repro.network.node import ProposerNode
from repro.txpool.transaction import Transaction


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("diff-test").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


def _kinds(report):
    return {f.kind for f in report.findings}


class TestHonestBlocks:
    def test_sealed_block_diffs_clean(self, sealed, small_universe):
        report = diff_block(sealed.block, small_universe.genesis)
        assert report.ok, report.summary()
        assert report.n_txs == len(sealed.block.transactions)
        assert report.serial_state_root == bytes(sealed.block.header.state_root)

    def test_sealed_proposal_diffs_clean(self, sealed, small_universe):
        report = diff_proposal(sealed, small_universe.genesis)
        assert report.ok, report.summary()

    def test_empty_block_diffs_clean(self, small_universe, genesis_chain):
        sealed = ProposerNode("diff-test").build_block(
            genesis_chain.genesis.header, small_universe.genesis, []
        )
        assert diff_block(sealed.block, small_universe.genesis).ok

    def test_summary_mentions_outcome(self, sealed, small_universe):
        assert "OK" in diff_block(sealed.block, small_universe.genesis).summary()


class TestHeaderTampering:
    def test_wrong_state_root_found(self, sealed, small_universe):
        header = dataclasses.replace(
            sealed.block.header, state_root=Hash32(b"\x01" * 32)
        )
        bad = dataclasses.replace(sealed.block, header=header)
        report = diff_block(bad, small_universe.genesis)
        assert not report.ok
        assert "state_root" in _kinds(report)
        # the replay itself succeeded, so the true root is still reported
        assert report.serial_state_root == bytes(sealed.block.header.state_root)

    def test_wrong_gas_used_found(self, sealed, small_universe):
        header = dataclasses.replace(
            sealed.block.header, gas_used=sealed.block.header.gas_used + 1
        )
        bad = dataclasses.replace(sealed.block, header=header)
        report = diff_block(bad, small_universe.genesis)
        assert not report.ok
        assert "gas_used" in _kinds(report)


class TestReceiptTampering:
    def test_tampered_receipt_gas_found(self, sealed, small_universe):
        receipts = list(sealed.block.receipts)
        victim = receipts[1]
        receipts[1] = dataclasses.replace(victim, gas_used=victim.gas_used + 7)
        bad = dataclasses.replace(sealed.block, receipts=tuple(receipts))
        report = diff_block(bad, small_universe.genesis)
        assert not report.ok
        kinds = _kinds(report)
        assert "receipt_gas" in kinds
        # header's receipts root no longer matches either
        assert "structure" in kinds
        assert any(f.kind == "receipt_gas" and f.index == 1 for f in report.findings)

    def test_tampered_success_flag_found(self, sealed, small_universe):
        receipts = list(sealed.block.receipts)
        victim = receipts[0]
        receipts[0] = dataclasses.replace(victim, success=not victim.success)
        bad = dataclasses.replace(sealed.block, receipts=tuple(receipts))
        report = diff_block(bad, small_universe.genesis)
        assert "receipt_success" in _kinds(report)

    def test_dropped_receipt_found(self, sealed, small_universe):
        bad = dataclasses.replace(sealed.block, receipts=sealed.block.receipts[:-1])
        report = diff_block(bad, small_universe.genesis)
        assert "receipt_count" in _kinds(report)


class TestProfileTampering:
    def test_tampered_profile_gas_found(self, sealed, small_universe):
        entries = list(sealed.block.profile.entries)
        entries[3] = dataclasses.replace(entries[3], gas_used=entries[3].gas_used + 1)
        bad = dataclasses.replace(
            sealed.block, profile=BlockProfile(entries=tuple(entries))
        )
        report = diff_block(bad, small_universe.genesis)
        assert not report.ok
        assert any(
            f.kind == "profile_gas" and f.index == 3 for f in report.findings
        )

    def test_hidden_profile_read_found(self, sealed, small_universe):
        from repro.state.access import FrozenRWSet

        entries = list(sealed.block.profile.entries)
        victim = entries[0]
        stripped = FrozenRWSet(reads=victim.rw.reads[1:], writes=victim.rw.writes)
        entries[0] = dataclasses.replace(victim, rw=stripped)
        bad = dataclasses.replace(
            sealed.block, profile=BlockProfile(entries=tuple(entries))
        )
        report = diff_block(bad, small_universe.genesis)
        assert "profile_reads" in _kinds(report)

    def test_tampered_write_value_found(self, sealed, small_universe):
        from repro.state.access import FrozenRWSet

        entries = list(sealed.block.profile.entries)
        victim = next(e for e in entries if e.rw.writes)
        index = entries.index(victim)
        key, value = victim.rw.writes[0]
        forged = ((key, value + 1),) + tuple(victim.rw.writes[1:])
        entries[index] = dataclasses.replace(
            victim, rw=FrozenRWSet(reads=victim.rw.reads, writes=forged)
        )
        bad = dataclasses.replace(
            sealed.block, profile=BlockProfile(entries=tuple(entries))
        )
        report = diff_block(bad, small_universe.genesis)
        assert any(
            f.kind == "profile_writes" and f.index == index for f in report.findings
        )


class TestReplayAborts:
    def test_invalid_transaction_stops_replay(self, sealed, small_universe):
        honest = sealed.block.transactions[0]
        bogus = Transaction(
            sender=honest.sender,
            to=honest.to,
            value=honest.value,
            data=honest.data,
            gas_limit=honest.gas_limit,
            gas_price=honest.gas_price,
            nonce=honest.nonce + 99,  # nonce gap: serial replay must reject
        )
        bad = dataclasses.replace(
            sealed.block,
            transactions=(bogus,) + sealed.block.transactions[1:],
        )
        report = diff_block(bad, small_universe.genesis)
        assert not report.ok
        assert "invalid_tx" in _kinds(report)
        assert report.serial_state_root is None


class TestProposalBookkeeping:
    def test_stats_drift_found(self, sealed, small_universe):
        sealed.proposal.stats.extra["committed"] += 1
        try:
            report = diff_proposal(sealed, small_universe.genesis)
        finally:
            sealed.proposal.stats.extra["committed"] -= 1
        assert not report.ok
        assert "stats_committed" in _kinds(report)

    def test_invalid_dropped_drift_found(self, sealed, small_universe):
        extra = sealed.proposal.stats.extra
        original = extra.get("invalid_dropped", 0)
        extra["invalid_dropped"] = original + 5
        try:
            report = diff_proposal(sealed, small_universe.genesis)
        finally:
            extra["invalid_dropped"] = original
        assert "stats_invalid_dropped" in _kinds(report)
