"""Schedule fuzzer: every reachable interleaving is conformant — and a
deliberately broken guard is caught and shrunk to a minimal repro.

The probe-driven drivers must be byte-identical to production under the
identity schedule, deterministic per seed, replayable from recorded
decisions, and clean across a seeded sweep.  Breaking the footprint guard
(the test-only mutation the issue calls for) must surface as a verdict
divergence against the serial reference within a handful of schedules.
"""

import json

import pytest

from repro.check.fuzzer import (
    ConformanceScenario,
    FuzzSchedule,
    fuzz_conformance,
    load_schedule_json,
    run_schedule,
    save_failures,
    shrink_schedule,
)
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.exec import ThreadBackend
from repro.exec.tasks import GuardedSnapshot
from repro.txpool.pool import TxPool


@pytest.fixture(scope="module")
def scenario():
    return ConformanceScenario.hotspot(n_txs=14, seed=7)


def _propose(scenario, probe=None):
    pool = TxPool()
    pool.add_many(scenario.txs)
    with ThreadBackend(scenario.workers) as backend:
        proposer = OCCWSIProposer(
            config=ProposerConfig(lanes=scenario.lanes),
            backend=backend,
            probe=probe,
        )
        return proposer.propose(scenario.universe.genesis, pool, scenario.ctx())


class TestSchedules:
    def test_identity_schedule_matches_production(self, scenario):
        # an explicit schedule with no decisions IS the production schedule
        reference = _propose(scenario, probe=None)
        probe = FuzzSchedule(seed=0, mode="explicit").probe()
        probe.scope = "propose"
        replayed = _propose(scenario, probe=probe)
        assert [c.tx.hash for c in replayed.committed] == [
            c.tx.hash for c in reference.committed
        ]
        ctx = scenario.ctx()
        assert (
            replayed.final_state(coinbase=ctx.coinbase).state_root()
            == reference.final_state(coinbase=ctx.coinbase).state_root()
        )

    def test_seeded_derivation_is_deterministic(self, scenario):
        a, b = FuzzSchedule(seed=99), FuzzSchedule(seed=99)
        assert run_schedule(scenario, a) is None
        assert run_schedule(scenario, b) is None
        assert a.decisions == b.decisions
        assert a.decisions, "a seeded run should record real decisions"

    def test_explicit_replay_reproduces_the_block(self, scenario):
        seeded = FuzzSchedule(seed=41)
        probe = seeded.probe()
        probe.scope = "propose"
        first = _propose(scenario, probe=probe)
        replay_probe = seeded.explicit().probe()
        replay_probe.scope = "propose"
        second = _propose(scenario, probe=replay_probe)
        assert [c.tx.hash for c in second.committed] == [
            c.tx.hash for c in first.committed
        ]

    def test_malformed_decisions_fall_back_to_identity(self, scenario):
        # out-of-range / non-permutation orders must not crash the drivers
        broken = FuzzSchedule(
            seed=0,
            mode="explicit",
            decisions={
                "propose/wave_commit:0": [9, 9, 9, 9],
                "propose/wave_width:0": 0,
                "validate/lane_order": [2, 0],
            },
        )
        assert run_schedule(scenario, broken) is None


class TestConformanceSweep:
    def test_seeded_sweep_is_conformant(self, scenario):
        result = fuzz_conformance(scenario, 30, seed=100)
        assert result.ok, result.summary()
        assert result.schedules_run == 30
        assert "all conformant" in result.summary()

    @pytest.mark.slow
    @pytest.mark.fuzz
    def test_two_hundred_interleavings_find_nothing(self, scenario):
        result = fuzz_conformance(scenario, 200, seed=1000)
        assert result.ok, result.summary()
        assert result.schedules_run == 200

    def test_budget_stops_early(self, scenario):
        result = fuzz_conformance(scenario, 10_000, seed=0, budget_s=0.3)
        assert result.ok
        assert result.schedules_run < 10_000


class TestBrokenGuard:
    @pytest.fixture()
    def broken_guard(self, monkeypatch):
        # test-only mutation: the footprint guard serves any account from
        # the base snapshot without recording or raising — exactly the bug
        # class the conformance property exists to catch
        monkeypatch.setattr(
            GuardedSnapshot,
            "account",
            lambda self, address: self._base.account(address),
        )

    def test_broken_guard_caught_and_shrunk(self, scenario, broken_guard):
        result = fuzz_conformance(scenario, 5, seed=7, max_failures=1)
        assert not result.ok
        failure = result.failures[0]
        assert failure.kind == "divergence"
        assert "serial reference" in failure.detail
        # shrinking ran while the guard was still broken...
        assert failure.shrunk is not None
        assert set(failure.shrunk.decisions) <= set(
            failure.schedule.explicit().decisions
        )
        # ...and the minimal schedule still reproduces the failure
        repro = run_schedule(scenario, failure.shrunk)
        assert repro is not None and repro.kind == "divergence"
        assert "FAILURE" in result.summary()

    def test_shrunk_schedule_passes_once_fixed(self, scenario):
        # shrink a seeded schedule against a broken guard, then verify the
        # repro is clean after the "fix" (monkeypatch scope ends per-step)
        schedule = FuzzSchedule(seed=7)
        original = GuardedSnapshot.account
        GuardedSnapshot.account = lambda self, address: self._base.account(address)
        try:
            failure = run_schedule(scenario, schedule)
            assert failure is not None

            def still_fails(trial):
                repro = run_schedule(scenario, trial)
                return repro is not None and repro.kind == failure.kind

            shrunk = shrink_schedule(schedule, still_fails)
        finally:
            GuardedSnapshot.account = original
        assert run_schedule(scenario, shrunk) is None


class TestReproArtifacts:
    def test_failures_round_trip_through_json(self, scenario, tmp_path):
        original = GuardedSnapshot.account
        GuardedSnapshot.account = lambda self, address: self._base.account(address)
        try:
            result = fuzz_conformance(
                scenario, 3, seed=11, max_failures=2, shrink=True
            )
        finally:
            GuardedSnapshot.account = original
        assert result.failures
        path = tmp_path / "failing.json"
        save_failures(result, str(path))

        payload = json.loads(path.read_text())
        assert payload["scenario"] == "hotspot"
        assert len(payload["failures"]) == len(result.failures)
        for entry in payload["failures"]:
            assert entry["kind"] == "divergence"

        schedules = load_schedule_json(str(path))
        assert len(schedules) == len(result.failures)
        for schedule in schedules:
            assert schedule.mode == "explicit"
            # guard is fixed again: the recorded schedules are clean now
            assert run_schedule(scenario, schedule) is None

    def test_bare_schedule_file_loads(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(
            json.dumps({"seed": 5, "mode": "explicit", "decisions": {"k": 1}})
        )
        schedules = load_schedule_json(str(path))
        assert len(schedules) == 1
        assert schedules[0].seed == 5
        assert schedules[0].decisions == {"k": 1}
