"""Serializability oracle: honest blocks prove clean, reordered blocks don't.

Covers the local invariants (future/stale reads) on synthetic rw-sets, the
cycle search, sealed blocks from the paper's benchmark scenarios (Fig. 6/7a
single blocks, Fig. 9 multi-block chains, Fig. 8 hotspot intensities), the
swap-two-conflicting-transactions rejection with a cycle witness, and the
``strict_checks`` post-propose hook on both proposer paths.
"""

import dataclasses
import types

import pytest

from repro.chain.block import BlockProfile
from repro.check.oracle import (
    ConflictEdge,
    ScheduleReport,
    ScheduleViolation,
    ScheduleViolationError,
    _check_entries,
    _find_cycle,
    verify_commit_order,
    verify_schedule,
)
from repro.common.types import Address
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import ExecutionContext
from repro.exec import ThreadBackend
from repro.network.node import ProposerNode
from repro.state.access import balance_key, storage_key
from repro.txpool.pool import TxPool
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import hotspot_scenario

K1 = balance_key(Address.from_int(1))
K2 = storage_key(Address.from_int(2), 7)


def _ctx():
    return ExecutionContext(
        block_number=1,
        timestamp=1_000,
        coinbase=Address(b"\xcc" * 20),
        gas_limit=30_000_000,
    )


class TestLocalInvariants:
    def test_clean_pipeline_is_serializable(self):
        # t1 writes K1 from the base snapshot; t2 observes it at snapshot 1
        entries = [
            (((K2, 0),), (K1,)),
            (((K1, 1),), (K2,)),
        ]
        report = _check_entries(entries)
        assert report.ok
        assert ("wr", 1, 2) in [(e.kind, e.src, e.dst) for e in report.edges]

    def test_disjoint_txs_have_no_edges(self):
        entries = [
            (((K1, 0),), (K1,)),
            (((K2, 0),), (K2,)),
        ]
        report = _check_entries(entries)
        assert report.ok
        assert report.edges == []

    def test_future_read_rejected(self):
        # position 1 claiming snapshot 1 means it observed its own commit
        report = _check_entries([(((K1, 1),), ())])
        assert not report.ok
        assert [v.kind for v in report.violations] == ["future_read"]
        assert report.violations[0].tx == 1

    def test_stale_read_rejected_with_two_cycle_witness(self):
        # t1 writes K1 as version 1; t2 read K1 at snapshot 0, i.e. it
        # missed the write it was supposed to see — OCC-WSI would abort
        entries = [
            ((), (K1,)),
            (((K1, 0),), ()),
        ]
        report = _check_entries(entries)
        assert not report.ok
        stale = [v for v in report.violations if v.kind == "stale_read"]
        assert len(stale) == 1
        witness_kinds = {(e.kind, e.src, e.dst) for e in stale[0].witness}
        assert ("wr", 1, 2) in witness_kinds
        assert ("rw", 2, 1) in witness_kinds
        assert report.cycle is not None

    def test_base_snapshot_reads_always_legal(self):
        # reads at snapshot 0 of never-written keys observe genesis: fine
        report = _check_entries([(((K1, 0), (K2, 0)), ())])
        assert report.ok

    def test_ww_edges_follow_version_order(self):
        entries = [((), (K1,)), ((), (K1,)), ((), (K1,))]
        report = _check_entries(entries)
        assert report.ok
        ww = [(e.src, e.dst) for e in report.edges if e.kind == "ww"]
        assert ww == [(1, 2), (2, 3)]


class TestCycleSearch:
    def _edges(self, *pairs):
        return [ConflictEdge(a, b, "rw", K1) for a, b in pairs]

    def test_acyclic_returns_none(self):
        assert _find_cycle(4, self._edges((1, 2), (2, 3), (1, 4))) is None

    def test_simple_cycle_found_as_edge_path(self):
        cycle = _find_cycle(3, self._edges((1, 2), (2, 3), (3, 1)))
        assert cycle is not None
        assert [e.src for e in cycle] == [1, 2, 3]
        assert cycle[-1].dst == cycle[0].src

    def test_cycle_off_the_main_path(self):
        cycle = _find_cycle(5, self._edges((1, 2), (3, 4), (4, 5), (5, 3)))
        assert cycle is not None
        assert {e.src for e in cycle} == {3, 4, 5}

    def test_self_loops_ignored(self):
        assert _find_cycle(2, self._edges((1, 1), (1, 2))) is None


class TestSealedBlocks:
    def _sealed(self, universe, chain, txs):
        return ProposerNode("oracle-test").build_block(
            chain.genesis.header, universe.genesis, txs
        )

    def test_benchmark_block_proves_serializable(
        self, small_universe, small_generator, genesis_chain
    ):
        # the Fig. 6 / Fig. 7(a) unit of work: one contended block
        sealed = self._sealed(
            small_universe, genesis_chain, small_generator.generate_block_txs()
        )
        report = verify_schedule(sealed.block)
        assert report.ok, report.summary()
        assert report.n_txs == len(sealed.block.transactions)
        assert sum(report.edge_counts().values()) > 0, (
            "benchmark workload should carry real conflicts"
        )

    def test_multi_block_chain_proves_serializable(
        self, small_universe, small_generator, genesis_chain
    ):
        # the Fig. 9 shape: consecutive blocks, each from its parent state
        from repro.core.baselines import SerialExecutor

        serial = SerialExecutor()
        parent_header = genesis_chain.genesis.header
        parent_state = small_universe.genesis
        for _ in range(3):
            txs = small_generator.generate_block_txs()
            sealed = ProposerNode("chain").build_block(
                parent_header, parent_state, txs
            )
            assert verify_schedule(sealed.block).ok
            sres = serial.execute_block(sealed.block, parent_state)
            parent_header = sealed.block.header
            parent_state = sres.post_state

    @pytest.mark.parametrize("intensity", [0.0, 1.0])
    def test_hotspot_extremes_prove_serializable(
        self, small_universe, genesis_chain, intensity
    ):
        generator = BlockWorkloadGenerator(
            small_universe, hotspot_scenario(intensity, seed=3)
        )
        sealed = self._sealed(
            small_universe, genesis_chain, generator.generate_block_txs()
        )
        assert verify_schedule(sealed.block).ok

    def test_swapped_conflicting_txs_rejected_with_cycle_witness(
        self, small_universe, small_generator, genesis_chain
    ):
        sealed = self._sealed(
            small_universe, genesis_chain, small_generator.generate_block_txs()
        )
        block = sealed.block
        honest = verify_schedule(block)
        conflicts = [
            (e.src, e.dst) for e in honest.edges if e.kind in ("wr", "ww")
        ]
        assert conflicts, "need at least one dependent pair to swap"
        src, dst = conflicts[0]
        order = list(range(len(block.transactions)))
        order[src - 1], order[dst - 1] = order[dst - 1], order[src - 1]
        reordered = dataclasses.replace(
            block,
            transactions=tuple(block.transactions[i] for i in order),
            profile=BlockProfile(
                entries=tuple(block.profile.entries[i] for i in order)
            ),
        )
        report = verify_schedule(reordered)
        assert not report.ok
        assert report.cycle is not None, "violation must carry a cycle witness"
        # the witness names the swapped conflict, in reordered positions
        touched = {e.src for e in report.cycle} | {e.dst for e in report.cycle}
        assert touched & {src, dst}

    def test_missing_profile_is_a_violation(
        self, small_universe, small_generator, genesis_chain
    ):
        sealed = self._sealed(
            small_universe, genesis_chain, small_generator.generate_block_txs()
        )
        stripped = dataclasses.replace(sealed.block, profile=None)
        report = verify_schedule(stripped)
        assert not report.ok
        assert report.violations[0].kind == "missing_profile"


class TestCommitOrder:
    def _propose(self, universe, generator, backend=None, **cfg):
        pool = TxPool()
        pool.add_many(generator.generate_block_txs())
        proposer = OCCWSIProposer(
            config=ProposerConfig(lanes=4, **cfg), backend=backend
        )
        return proposer.propose(universe.genesis, pool, _ctx())

    def test_live_proposal_verifies(self, small_universe, small_generator):
        result = self._propose(small_universe, small_generator)
        report = verify_commit_order(result)
        assert report.ok, report.summary()

    def test_strict_checks_pass_on_sim_path(self, small_universe, small_generator):
        result = self._propose(small_universe, small_generator, strict_checks=True)
        assert result.committed

    def test_strict_checks_pass_on_backend_path(
        self, small_universe, small_generator
    ):
        with ThreadBackend(2) as backend:
            result = self._propose(
                small_universe, small_generator, backend=backend, strict_checks=True
            )
        assert result.committed

    def test_store_drift_reported(self, small_universe, small_generator):
        result = self._propose(small_universe, small_generator)
        honest = result.store.key_versions()
        drifted = dict(honest)
        drifted.pop(next(iter(drifted)))

        class DriftedStore:
            def key_versions(self):
                return drifted

        fake = types.SimpleNamespace(
            committed=result.committed, store=DriftedStore()
        )
        report = verify_commit_order(fake)
        assert not report.ok
        assert any(v.kind == "store_mismatch" for v in report.violations)

    def test_strict_checks_raise_on_violation(
        self, small_universe, small_generator, monkeypatch
    ):
        failing = ScheduleReport(ok=False, n_txs=1)
        failing.violations.append(
            ScheduleViolation("stale_read", 1, K1, "injected for test")
        )
        monkeypatch.setattr(
            "repro.check.oracle.verify_commit_order", lambda result: failing
        )
        with pytest.raises(ScheduleViolationError) as exc:
            self._propose(small_universe, small_generator, strict_checks=True)
        assert exc.value.report is failing
        assert "stale_read" in str(exc.value)

    def test_without_strict_checks_nothing_raises(
        self, small_universe, small_generator, monkeypatch
    ):
        failing = ScheduleReport(ok=False, n_txs=1)
        failing.violations.append(
            ScheduleViolation("stale_read", 1, K1, "injected for test")
        )
        monkeypatch.setattr(
            "repro.check.oracle.verify_commit_order", lambda result: failing
        )
        result = self._propose(small_universe, small_generator)
        assert result.committed
