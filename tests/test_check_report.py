"""Footprint race detector: lying profiles become typed findings.

Production behaviour on an out-of-footprint access is a silent serial
fallback; with a :class:`~repro.check.report.CheckLog` attached the same
fallback happens, but every miss is recorded as a
:class:`~repro.check.report.FootprintViolation` naming the component, the
transactions and the escaped account.
"""

import pytest

from repro.check.fuzzer import forge_lying_profile_block
from repro.check.report import CheckLog, FootprintViolation
from repro.common.types import Address
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.exec import SerialBackend, ThreadBackend


def _violation(component=0, address=None, block="deadbeef"):
    return FootprintViolation(
        block=block,
        component=component,
        tx_indices=(0, 2),
        address=address or Address.from_int(0xAB),
        declared=3,
    )


class TestCheckLogUnit:
    def test_starts_clean(self):
        log = CheckLog()
        assert log.clean
        assert log.by_block() == {}
        assert "clean" in log.summary()

    def test_record_and_reset(self):
        log = CheckLog()
        log.record_footprint(_violation())
        assert not log.clean
        assert len(log.footprint_violations) == 1
        log.reset()
        assert log.clean

    def test_by_block_counts(self):
        log = CheckLog()
        log.record_footprint(_violation(block="aaaa"))
        log.record_footprint(_violation(block="aaaa", component=1))
        log.record_footprint(_violation(block="bbbb"))
        assert log.by_block() == {"aaaa": 2, "bbbb": 1}

    def test_to_dict_round_trips_fields(self):
        violation = _violation()
        log = CheckLog()
        log.record_footprint(violation)
        payload = log.to_dict()["footprint_violations"][0]
        assert payload["component"] == violation.component
        assert payload["tx_indices"] == list(violation.tx_indices)
        assert payload["address"] == violation.address.hex()
        assert payload["declared"] == violation.declared

    def test_describe_names_the_account(self):
        text = _violation().describe()
        assert "component 0" in text
        assert Address.from_int(0xAB).hex()[:8] in text


class TestFootprintDetection:
    @pytest.fixture()
    def lying_block(self, small_universe):
        return forge_lying_profile_block(small_universe)

    def _validate(self, block, universe, backend, check_log):
        validator = ParallelValidator(
            config=ValidatorConfig(lanes=4, verify_profile=False),
            backend=backend,
            check_log=check_log,
        )
        return validator.validate_block(block, universe.genesis)

    @pytest.mark.parametrize(
        "factory", [SerialBackend, lambda: ThreadBackend(2)]
    )
    def test_lying_profile_recorded_and_still_accepted(
        self, small_universe, lying_block, factory
    ):
        hidden = small_universe.eoas[-1]
        log = CheckLog()
        with factory() as backend:
            result = self._validate(lying_block, small_universe, backend, log)
        # the guard discards the parallel attempt; the inline serial
        # reference loop still produces the correct (accepting) verdict
        assert result.accepted, result.reason
        # ...but the lie is no longer silent
        assert not log.clean
        assert any(v.address == hidden for v in log.footprint_violations)
        assert set(log.by_block()) == {lying_block.hash.hex()[:8]}

    def test_record_mode_does_not_change_the_verdict(
        self, small_universe, lying_block
    ):
        with ThreadBackend(2) as backend:
            silent = self._validate(lying_block, small_universe, backend, None)
        log = CheckLog()
        with ThreadBackend(2) as backend:
            recorded = self._validate(lying_block, small_universe, backend, log)
        assert silent.accepted == recorded.accepted
        assert (
            silent.post_state.state_root() == recorded.post_state.state_root()
        )
        assert not log.clean

    def test_violation_names_the_hidden_conflict(
        self, small_universe, lying_block
    ):
        hidden = small_universe.eoas[-1]
        log = CheckLog()
        with ThreadBackend(2) as backend:
            self._validate(lying_block, small_universe, backend, log)
        violations = [v for v in log.footprint_violations if v.address == hidden]
        assert violations
        for violation in violations:
            assert violation.tx_indices, "finding must name its transactions"
            assert violation.declared > 0
            assert str(violation.component) in violation.describe()

    def test_honest_blocks_record_nothing(
        self, small_universe, small_generator, genesis_chain
    ):
        from repro.network.node import ProposerNode

        sealed = ProposerNode("honest").build_block(
            genesis_chain.genesis.header,
            small_universe.genesis,
            small_generator.generate_block_txs(),
        )
        log = CheckLog()
        with ThreadBackend(2) as backend:
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=4), backend=backend, check_log=log
            )
            result = validator.validate_block(sealed.block, small_universe.genesis)
        assert result.accepted
        assert not result.used_serial_fallback
        assert log.clean
