"""CLI smoke tests (direct invocation of the argument-parsing entry point)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.seed == 42
        assert args.txs_per_block == 132

    def test_lane_lists(self):
        args = build_parser().parse_args(["proposer", "--lanes", "2", "8"])
        assert args.lanes == [2, 8]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.mode == "round"
        assert args.rounds == 2
        assert args.out == "trace.json"

    def test_scenario_flag(self):
        args = build_parser().parse_args(["--scenario", "mev-bundles", "demo"])
        assert args.scenario == "mev-bundles"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "nonsense", "demo"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--data-dir", "/tmp/x"])
        assert args.data_dir == "/tmp/x"
        assert args.blocks == 0  # run until signalled
        assert args.block_interval == 12
        assert args.snapshot_interval == 64
        assert args.no_compact is False
        assert args.no_fsync is False
        assert args.report_every == 0

    def test_serve_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestCommands:
    """Run each command on a tiny workload; assert exit code and output."""

    ARGS = ["--txs-per-block", "25", "--blocks-per-point", "1"]

    def test_demo(self, capsys):
        assert main([*self.ARGS, "demo"]) == 0
        out = capsys.readouterr().out
        assert "round trip" in out
        assert "True" in out

    def test_proposer_sweep(self, capsys):
        assert main([*self.ARGS, "proposer", "--lanes", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert out.count("\n") >= 4

    def test_validator_sweep(self, capsys):
        assert main([*self.ARGS, "validator", "--lanes", "1", "4"]) == 0
        assert "Fig. 7a" in capsys.readouterr().out

    def test_pipeline_sweep(self, capsys):
        assert main([*self.ARGS, "pipeline", "--blocks", "1", "2"]) == 0
        assert "Fig. 9" in capsys.readouterr().out

    def test_hotspot_sweep(self, capsys):
        assert main([*self.ARGS, "hotspot"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        assert "%" in out

    def test_trace_round(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        argv = [*self.ARGS, "trace", "--rounds", "1", "--out", str(out_path)]
        assert main(argv) == 0
        printed = capsys.readouterr().out
        assert "flame summary" in printed
        assert "metrics:" in printed
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
        assert (tmp_path / "trace_flame.txt").read_text().startswith("flame")

    def test_trace_network(self, tmp_path):
        out_path = tmp_path / "net.json"
        argv = [
            *self.ARGS, "trace", "--mode", "network",
            "--rounds", "1", "--out", str(out_path),
        ]
        assert main(argv) == 0
        assert out_path.exists()

    def test_serve_bounded_run(self, capsys, tmp_path):
        data_dir = tmp_path / "node"
        argv = [
            *self.ARGS, "serve", "--data-dir", str(data_dir),
            "--blocks", "2", "--snapshot-interval", "0", "--no-fsync",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "height=2" in out
        assert "sealed=True" in out
        assert (data_dir / "manifest.json").exists()
        # a second invocation resumes, produces nothing, same head
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "produced=0" in out
        assert "recovery:" in out
