"""Tests for the canonical hashing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import EMPTY_HASH, hash_of, keccak


class TestKeccak:
    def test_deterministic(self):
        assert keccak(b"abc") == keccak(b"abc")

    def test_distinct_inputs_distinct_outputs(self):
        assert keccak(b"abc") != keccak(b"abd")

    def test_empty_hash_constant(self):
        assert EMPTY_HASH == keccak(b"")

    def test_output_is_32_bytes(self):
        assert len(keccak(b"hello")) == 32


class TestHashOf:
    def test_type_separation_bytes_vs_str(self):
        assert hash_of(b"abc") != hash_of("abc")

    def test_int_vs_bytes_distinct(self):
        assert hash_of(1) != hash_of(b"\x01")

    def test_nesting_matters(self):
        assert hash_of([b"a", b"b"]) != hash_of([[b"a"], b"b"])

    def test_negative_and_positive_distinct(self):
        assert hash_of(-5) != hash_of(5)

    def test_none_supported(self):
        assert hash_of(None) == hash_of(None)
        assert hash_of(None) != hash_of(0)

    def test_bool_not_confused_with_int(self):
        assert hash_of(True) != hash_of(1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            hash_of(object())

    @given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
    def test_equal_inputs_equal_hashes(self, a, b):
        if a == b:
            assert hash_of(*a) == hash_of(*b)
        else:
            assert hash_of(*a) != hash_of(*b)

    def test_concatenation_ambiguity_resolved(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert hash_of("ab", "c") != hash_of("a", "bc")
