"""RLP encoder/decoder tests, including yellow-paper vectors and round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rlp import RLPDecodeError, rlp_decode, rlp_encode


class TestKnownVectors:
    """Canonical examples from the Ethereum wiki / yellow paper."""

    def test_empty_string(self):
        assert rlp_encode(b"") == b"\x80"

    def test_single_low_byte(self):
        assert rlp_encode(b"\x00") == b"\x00"
        assert rlp_encode(b"\x7f") == b"\x7f"

    def test_single_high_byte(self):
        assert rlp_encode(b"\x80") == b"\x81\x80"

    def test_dog(self):
        assert rlp_encode(b"dog") == b"\x83dog"

    def test_cat_dog_list(self):
        assert rlp_encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_empty_list(self):
        assert rlp_encode([]) == b"\xc0"

    def test_integer_zero_is_empty_string(self):
        assert rlp_encode(0) == b"\x80"

    def test_integer_fifteen(self):
        assert rlp_encode(15) == b"\x0f"

    def test_integer_1024(self):
        assert rlp_encode(1024) == b"\x82\x04\x00"

    def test_set_theoretic_nesting(self):
        # [ [], [[]], [ [], [[]] ] ]
        assert rlp_encode([[], [[]], [[], [[]]]]) == bytes.fromhex("c7c0c1c0c3c0c1c0")

    def test_long_string_uses_long_form(self):
        data = b"a" * 56
        enc = rlp_encode(data)
        assert enc[0] == 0xB8
        assert enc[1] == 56
        assert enc[2:] == data

    def test_str_encodes_as_utf8(self):
        assert rlp_encode("dog") == rlp_encode(b"dog")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            rlp_encode(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(3.14)


nested_items = st.recursive(
    st.binary(max_size=70),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


class TestRoundTrip:
    @given(nested_items)
    def test_encode_decode_round_trip(self, item):
        assert rlp_decode(rlp_encode(item)) == item

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_int_round_trip_via_bytes(self, value):
        decoded = rlp_decode(rlp_encode(value))
        assert int.from_bytes(decoded, "big") == value


class TestStrictDecoding:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(rlp_encode(b"dog") + b"\x00")

    def test_truncated_string_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x83do")

    def test_truncated_list_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xc8\x83cat")

    def test_non_canonical_single_byte_rejected(self):
        # 0x81 0x05 encodes byte 5, which must encode as plain 0x05
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x81\x05")

    def test_long_form_for_short_payload_rejected(self):
        # long-string header declaring a 3-byte payload is non-canonical
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xb8\x03dog")

    def test_length_with_leading_zero_rejected(self):
        payload = b"a" * 56
        bad = b"\xb9\x00\x38" + payload
        with pytest.raises(RLPDecodeError):
            rlp_decode(bad)

    def test_empty_input_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"")
