"""RLP encoder/decoder tests, including yellow-paper vectors and round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rlp import RLPDecodeError, rlp_decode, rlp_encode


class TestKnownVectors:
    """Canonical examples from the Ethereum wiki / yellow paper."""

    def test_empty_string(self):
        assert rlp_encode(b"") == b"\x80"

    def test_single_low_byte(self):
        assert rlp_encode(b"\x00") == b"\x00"
        assert rlp_encode(b"\x7f") == b"\x7f"

    def test_single_high_byte(self):
        assert rlp_encode(b"\x80") == b"\x81\x80"

    def test_dog(self):
        assert rlp_encode(b"dog") == b"\x83dog"

    def test_cat_dog_list(self):
        assert rlp_encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_empty_list(self):
        assert rlp_encode([]) == b"\xc0"

    def test_integer_zero_is_empty_string(self):
        assert rlp_encode(0) == b"\x80"

    def test_integer_fifteen(self):
        assert rlp_encode(15) == b"\x0f"

    def test_integer_1024(self):
        assert rlp_encode(1024) == b"\x82\x04\x00"

    def test_set_theoretic_nesting(self):
        # [ [], [[]], [ [], [[]] ] ]
        assert rlp_encode([[], [[]], [[], [[]]]]) == bytes.fromhex("c7c0c1c0c3c0c1c0")

    def test_long_string_uses_long_form(self):
        data = b"a" * 56
        enc = rlp_encode(data)
        assert enc[0] == 0xB8
        assert enc[1] == 56
        assert enc[2:] == data

    def test_str_encodes_as_utf8(self):
        assert rlp_encode("dog") == rlp_encode(b"dog")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            rlp_encode(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(3.14)


nested_items = st.recursive(
    st.binary(max_size=70),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


class TestRoundTrip:
    @given(nested_items)
    def test_encode_decode_round_trip(self, item):
        assert rlp_decode(rlp_encode(item)) == item

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_int_round_trip_via_bytes(self, value):
        decoded = rlp_decode(rlp_encode(value))
        assert int.from_bytes(decoded, "big") == value


class TestStrictDecoding:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(rlp_encode(b"dog") + b"\x00")

    def test_truncated_string_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x83do")

    def test_truncated_list_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xc8\x83cat")

    def test_non_canonical_single_byte_rejected(self):
        # 0x81 0x05 encodes byte 5, which must encode as plain 0x05
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\x81\x05")

    def test_long_form_for_short_payload_rejected(self):
        # long-string header declaring a 3-byte payload is non-canonical
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"\xb8\x03dog")

    def test_length_with_leading_zero_rejected(self):
        payload = b"a" * 56
        bad = b"\xb9\x00\x38" + payload
        with pytest.raises(RLPDecodeError):
            rlp_decode(bad)

    def test_empty_input_rejected(self):
        with pytest.raises(RLPDecodeError):
            rlp_decode(b"")


class TestHeaderRoundTripProperty:
    """Seeded random block headers survive the storage codec byte-for-byte.

    Pins the two conventions the block log relies on: zero-length byte
    fields (``extra=b""``, empty ``proposer_id``) ride as the canonical
    empty string, and integers (including 0) decode back exactly.
    """

    @staticmethod
    def _random_header(rng):
        from repro.chain.block import BlockHeader
        from repro.common.types import Address, Hash32

        return BlockHeader(
            parent_hash=Hash32(rng.randbytes(32)),
            number=rng.choice([0, 1, rng.randrange(1 << 32)]),
            state_root=Hash32(rng.randbytes(32)),
            transactions_root=Hash32(rng.randbytes(32)),
            receipts_root=Hash32(rng.randbytes(32)),
            gas_used=rng.choice([0, rng.randrange(1 << 40)]),
            gas_limit=rng.randrange(1, 1 << 40),
            coinbase=Address(rng.randbytes(20)),
            timestamp=rng.choice([0, rng.randrange(1 << 40)]),
            proposer_id=rng.choice(["", "n", "node-%d" % rng.randrange(100)]),
            extra=rng.choice([b"", rng.randbytes(rng.randrange(1, 33))]),
            logs_bloom=rng.choice([bytes(256), rng.randbytes(256)]),
        )

    @given(st.integers(min_value=0, max_value=1 << 32))
    def test_random_headers_round_trip(self, seed):
        import random

        from repro.store.codec import decode_header, encode_header

        header = self._random_header(random.Random(seed))
        decoded = decode_header(encode_header(header))
        assert decoded == header
        assert decoded.hash == header.hash
        # re-encoding is byte-identical (canonical form is a fixpoint)
        assert encode_header(decoded) == encode_header(header)

    def test_zero_length_extra_encodes_to_empty_string(self):
        from repro.chain.block import BlockHeader
        from repro.store.codec import decode_header, encode_header

        import random

        header = self._random_header(random.Random(7))
        bare = BlockHeader(
            **{
                **{f: getattr(header, f) for f in header.__dataclass_fields__},
                "extra": b"",
                "proposer_id": "",
            }
        )
        decoded = decode_header(encode_header(bare))
        assert decoded.extra == b""
        assert decoded.proposer_id == ""
        assert decoded == bare
