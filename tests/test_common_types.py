"""Unit tests for repro.common.types: addresses, hashes, u256 arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import (
    Address,
    Hash32,
    MAX_U256,
    to_u256,
    u256_add,
    u256_sub,
    u256_mul,
    u256_div,
    u256_mod,
    u256_exp,
    u256_to_signed,
    signed_to_u256,
    to_word_bytes,
    word_from_bytes,
)

u256s = st.integers(min_value=0, max_value=MAX_U256)


class TestAddress:
    def test_round_trip_int(self):
        a = Address.from_int(0xDEADBEEF)
        assert a.to_int() == 0xDEADBEEF
        assert len(a) == 20

    def test_from_hex_with_prefix(self):
        a = Address.from_hex("0x" + "ab" * 20)
        assert a == bytes.fromhex("ab" * 20)
        assert a.hex0x() == "0x" + "ab" * 20

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Address(b"\x00" * 19)
        with pytest.raises(ValueError):
            Address(b"\x00" * 21)

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            Address.from_int(-1)

    def test_usable_as_dict_key(self):
        a = Address.from_int(7)
        b = Address.from_int(7)
        assert {a: 1}[b] == 1


class TestHash32:
    def test_length_enforced(self):
        with pytest.raises(ValueError):
            Hash32(b"\x01" * 31)
        h = Hash32(b"\x01" * 32)
        assert h.hex0x().startswith("0x01")

    def test_from_hex(self):
        h = Hash32.from_hex("0x" + "00" * 32)
        assert h == b"\x00" * 32


class TestU256Arithmetic:
    def test_add_wraps(self):
        assert u256_add(MAX_U256, 1) == 0
        assert u256_add(MAX_U256, 2) == 1

    def test_sub_wraps(self):
        assert u256_sub(0, 1) == MAX_U256

    def test_div_and_mod_by_zero_are_zero(self):
        assert u256_div(5, 0) == 0
        assert u256_mod(5, 0) == 0

    def test_exp_wraps(self):
        assert u256_exp(2, 256) == 0
        assert u256_exp(2, 255) == 1 << 255
        assert u256_exp(3, 4) == 81

    @given(u256s, u256s)
    def test_add_matches_python_mod(self, a, b):
        assert u256_add(a, b) == (a + b) % (1 << 256)

    @given(u256s, u256s)
    def test_mul_matches_python_mod(self, a, b):
        assert u256_mul(a, b) == (a * b) % (1 << 256)

    @given(st.integers(min_value=-(1 << 255), max_value=(1 << 255) - 1))
    def test_signed_round_trip(self, x):
        assert u256_to_signed(signed_to_u256(x)) == x

    @given(u256s)
    def test_word_bytes_round_trip(self, x):
        assert word_from_bytes(to_word_bytes(x)) == x
        assert len(to_word_bytes(x)) == 32

    def test_word_from_short_bytes_left_pads(self):
        assert word_from_bytes(b"\x01\x02") == 0x0102

    def test_word_from_long_bytes_rejected(self):
        with pytest.raises(ValueError):
            word_from_bytes(b"\x00" * 33)

    def test_to_u256_reduces(self):
        assert to_u256(-1) == MAX_U256
        assert to_u256(1 << 256) == 0
