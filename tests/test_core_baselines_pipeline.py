"""Baseline executors and the multi-block pipeline."""

import pytest

from repro.core.baselines import SerialExecutor, TwoPhaseOCCExecutor
from repro.core.pipeline import PipelineConfig, ValidatorPipeline
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode
from repro.txpool.pool import TxPool


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestSerialExecutor:
    def test_execute_block_matches_header_root(self, sealed, small_universe):
        res = SerialExecutor().execute_block(sealed.block, small_universe.genesis)
        assert res.post_state.state_root() == sealed.block.header.state_root
        assert res.gas_used == sealed.block.header.gas_used

    def test_total_time_is_sum_of_parts(self, sealed, small_universe):
        serial = SerialExecutor()
        res = serial.execute_block(sealed.block, small_universe.genesis)
        model = serial.cost_model
        expected = (
            sum(res.tx_costs)
            + model.applier_per_tx * len(res.tx_results)
            + model.block_epilogue
            + model.block_commit
        )
        assert res.total_time == pytest.approx(expected)

    def test_propose_serial_packs_everything(
        self, small_universe, small_generator
    ):
        txs = small_generator.generate_block_txs()
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        res = SerialExecutor().propose_serial(
            small_universe.genesis, pool, ExecutionContext(block_number=1)
        )
        assert len(res.packed) == len(txs)
        assert len(pool) == 0

    def test_propose_serial_respects_gas_price_priority(self, small_universe):
        from repro.txpool.transaction import Transaction

        eoas = small_universe.eoas
        txs = [
            Transaction(eoas[i], eoas[i + 10], 1, b"", 60_000, price, 0)
            for i, price in enumerate([5, 50, 20])
        ]
        pool = TxPool()
        pool.add_many(txs)
        res = SerialExecutor().propose_serial(
            small_universe.genesis, pool, ExecutionContext(block_number=1)
        )
        assert [t.gas_price for t in res.packed] == [50, 20, 5]


class TestTwoPhaseOCC:
    def test_state_matches_serial(self, sealed, small_universe):
        occ = TwoPhaseOCCExecutor()
        serial = SerialExecutor()
        r_occ = occ.execute_block(sealed.block, small_universe.genesis)
        r_ser = serial.execute_block(sealed.block, small_universe.genesis)
        assert r_occ.post_state.state_root() == r_ser.post_state.state_root()

    def test_conflicted_fraction_reasonable(self, sealed, small_universe):
        r = TwoPhaseOCCExecutor().execute_block(sealed.block, small_universe.genesis)
        # hotspot workload: some but not all txs conflict
        assert 0.0 < r.conflict_fraction < 1.0

    def test_phase_decomposition(self, sealed, small_universe):
        r = TwoPhaseOCCExecutor().execute_block(sealed.block, small_universe.genesis)
        assert r.phase1_time > 0
        assert r.phase2_time > 0
        assert r.total_time > r.phase1_time + r.phase2_time - 1e-9

    def test_blockpilot_beats_two_phase_occ_on_average(
        self, small_universe, small_generator, genesis_chain
    ):
        """Fig. 7(a): BlockPilot above the OCC comparator at 16 threads.

        The claim is statistical: on a single extreme-hotspot block
        (account-level components swallowing ~80% of transactions),
        key-level two-phase OCC can edge ahead, but over a block sample
        BlockPilot wins — which is what the figure plots."""
        occ = TwoPhaseOCCExecutor(lanes=16)
        validator = ParallelValidator(config=ValidatorConfig(lanes=16))
        node = ProposerNode("alice")
        bp_speedups, occ_speedups = [], []
        for _ in range(4):
            txs = small_generator.generate_block_txs()
            sealed = node.build_block(
                genesis_chain.genesis.header, small_universe.genesis, txs
            )
            r_occ = occ.execute_block(sealed.block, small_universe.genesis)
            r_bp = validator.validate_block(sealed.block, small_universe.genesis)
            assert r_bp.accepted
            bp_speedups.append(r_bp.speedup)
            occ_speedups.append(r_occ.speedup)
        assert sum(bp_speedups) / 4 > sum(occ_speedups) / 4


class TestPipeline:
    def make_forks(self, small_universe, small_generator, genesis_chain, count):
        txs = small_generator.generate_block_txs()
        sim = ForkSimulator(count, seed=3)
        return sim.propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )

    def test_single_block_pipeline_equals_validator_acceptance(
        self, small_universe, small_generator, genesis_chain
    ):
        forks = self.make_forks(small_universe, small_generator, genesis_chain, 1)
        pipe = ValidatorPipeline()
        res = pipe.process_blocks(
            forks.blocks, {genesis_chain.genesis.header.hash: small_universe.genesis}
        )
        assert res.all_accepted
        assert res.makespan > 0

    def test_same_height_blocks_overlap(
        self, small_universe, small_generator, genesis_chain
    ):
        parent_states = {genesis_chain.genesis.header.hash: small_universe.genesis}
        pipe = ValidatorPipeline(config=PipelineConfig(worker_lanes=16))
        forks1 = self.make_forks(small_universe, small_generator, genesis_chain, 1)
        r1 = pipe.process_blocks(forks1.blocks, parent_states)
        forks3 = ForkSimulator(3, seed=3).propose_forks(
            genesis_chain.genesis.header,
            small_universe.genesis,
            list(forks1.proposals[0].block.transactions),
        )
        r3 = pipe.process_blocks(forks3.blocks, parent_states)
        assert r3.all_accepted
        # 3 sibling blocks processed in far less than 3x one block's time
        assert r3.makespan < 2.2 * r1.makespan
        assert r3.speedup > r1.speedup

    def test_parent_child_serialise_validation(
        self, small_universe, small_generator, genesis_chain
    ):
        node = ProposerNode("alice")
        txs1 = small_generator.generate_block_txs()
        sealed1 = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs1
        )
        txs2 = small_generator.generate_block_txs()
        sealed2 = node.build_block(sealed1.block.header, sealed1.post_state, txs2)

        pipe = ValidatorPipeline()
        res = pipe.process_blocks(
            [sealed1.block, sealed2.block],
            {genesis_chain.genesis.header.hash: small_universe.genesis},
        )
        assert res.all_accepted
        t1, t2 = res.timings
        assert t2.validate_end >= t1.validate_end
        assert t2.commit_end >= t1.commit_end

    def test_child_of_rejected_parent_rejected(
        self, small_universe, small_generator, genesis_chain
    ):
        import dataclasses

        from repro.common.types import Hash32

        node = ProposerNode("alice")
        txs1 = small_generator.generate_block_txs()
        sealed1 = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs1
        )
        txs2 = small_generator.generate_block_txs()
        sealed2 = node.build_block(sealed1.block.header, sealed1.post_state, txs2)
        # corrupt the parent
        bad_header = dataclasses.replace(
            sealed1.block.header, state_root=Hash32(b"\x01" * 32)
        )
        bad_parent = dataclasses.replace(sealed1.block, header=bad_header)
        # child still points at the ORIGINAL parent hash; rebuild child to
        # point at the corrupted one
        child_header = dataclasses.replace(
            sealed2.block.header, parent_hash=bad_parent.hash
        )
        child = dataclasses.replace(sealed2.block, header=child_header)

        res = ValidatorPipeline().process_blocks(
            [bad_parent, child],
            {genesis_chain.genesis.header.hash: small_universe.genesis},
        )
        assert not res.results[0].accepted
        assert not res.results[1].accepted
        assert res.results[1].reason == "parent block rejected"

    def test_unknown_parent_rejected(
        self, small_universe, small_generator, genesis_chain
    ):
        forks = self.make_forks(small_universe, small_generator, genesis_chain, 1)
        res = ValidatorPipeline().process_blocks(forks.blocks, {})
        assert not res.results[0].accepted
        assert res.results[0].reason == "unknown parent state"

    def test_multi_block_speedup_exceeds_single(
        self, small_universe, small_generator, genesis_chain
    ):
        parent_states = {genesis_chain.genesis.header.hash: small_universe.genesis}
        pipe = ValidatorPipeline(config=PipelineConfig(worker_lanes=16))
        txs = small_generator.generate_block_txs()
        r1 = pipe.process_blocks(
            ForkSimulator(1, seed=5)
            .propose_forks(genesis_chain.genesis.header, small_universe.genesis, txs)
            .blocks,
            parent_states,
        )
        r4 = pipe.process_blocks(
            ForkSimulator(4, seed=5)
            .propose_forks(genesis_chain.genesis.header, small_universe.genesis, txs)
            .blocks,
            parent_states,
        )
        assert r4.speedup > r1.speedup

    def test_context_switches_counted(
        self, small_universe, small_generator, genesis_chain
    ):
        forks = self.make_forks(small_universe, small_generator, genesis_chain, 3)
        res = ValidatorPipeline(
            config=PipelineConfig(worker_lanes=4)
        ).process_blocks(
            forks.blocks,
            {genesis_chain.genesis.header.hash: small_universe.genesis},
        )
        assert res.context_switches > 0

    def test_cycle_detection(self, small_universe, small_generator, genesis_chain):
        import dataclasses

        forks = self.make_forks(small_universe, small_generator, genesis_chain, 1)
        block = forks.blocks[0]
        looped_header = dataclasses.replace(block.header, parent_hash=block.header.hash)
        # a block that is its own parent? parent_hash == own old hash; after
        # replacing, the new hash differs, so build a 2-cycle instead
        a = dataclasses.replace(block, header=looped_header)
        # 2-cycle: a.parent = b, b.parent = a is impossible to fabricate with
        # content-addressed hashes; the self-parent case suffices only if the
        # hash matched, so just assert the pipeline treats it as unknown parent
        res = ValidatorPipeline().process_blocks([a], {})
        assert not res.results[0].accepted
