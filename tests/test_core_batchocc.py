"""Tests for the deterministic round-based OCC comparator."""


from repro.common.types import Address
from repro.core.batchocc import BatchOCCConfig, BatchOCCProposer
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

ETHER = 10**18
CTX = ExecutionContext(block_number=1, timestamp=9)


def world(n=10):
    eoas = [Address.from_int(0x900 + i) for i in range(n)]
    return eoas, genesis_snapshot({a: AccountData(balance=ETHER) for a in eoas})


def payment(sender, to, nonce=0, price=10, value=100):
    return Transaction(sender, to, value, b"", 60_000, price, nonce)


def run(base, txs, lanes=4, **cfg):
    pool = TxPool()
    pool.add_many(sorted(txs, key=lambda t: t.nonce))
    proposer = BatchOCCProposer(config=BatchOCCConfig(lanes=lanes, **cfg))
    return proposer.propose(base, pool, CTX), pool


class TestBatchOCC:
    def test_packs_everything(self):
        eoas, base = world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, pool = run(base, txs)
        assert len(result.committed) == 5
        assert len(pool) == 0

    def test_disjoint_txs_one_round(self):
        eoas, base = world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(4)]
        result, _ = run(base, txs, lanes=4)
        assert result.rounds == 1
        assert result.stats.aborts == 0

    def test_conflicts_spill_into_more_rounds(self):
        eoas, base = world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(6)]
        result, _ = run(base, txs, lanes=6)
        assert result.rounds > 1
        assert result.stats.aborts > 0
        assert len(result.committed) == 6

    def test_deterministic(self):
        eoas, base = world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot, price=10 + i) for i in range(6)]
        r1, _ = run(base, txs, lanes=4)
        r2, _ = run(base, txs, lanes=4)
        assert [t.hash for t in r1.committed] == [t.hash for t in r2.committed]
        assert r1.stats.makespan == r2.stats.makespan
        assert r1.post_state.state_root() == r2.post_state.state_root()

    def test_state_matches_serial_replay(self):
        eoas, base = world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(6)]
        result, _ = run(base, txs, lanes=4)
        db = StateDB(base)
        evm = EVM()
        for tx in result.committed:
            evm.apply_transaction(db, tx, CTX)
        assert db.commit().state_root() == result.post_state.state_root()

    def test_gas_limit_respected(self):
        eoas, base = world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, pool = run(base, txs, gas_limit=21000 * 2 + 1)
        assert len(result.committed) < 5
        assert len(pool) == 5 - len(result.committed)

    def test_invalid_dropped(self):
        eoas, base = world()
        bad = payment(eoas[0], eoas[1], value=5 * ETHER)
        good = payment(eoas[2], eoas[3])
        result, _ = run(base, [bad, good])
        assert result.invalid_dropped == 1
        assert len(result.committed) == 1

    def test_occ_wsi_beats_batch_occ_under_contention(
        self, small_universe, small_generator
    ):
        """The barrier wastes lane time every round; OCC-WSI's free-running
        lanes finish the same block sooner."""
        txs = small_generator.generate_block_txs()

        pool1 = TxPool()
        pool1.add_many(sorted(txs, key=lambda t: t.nonce))
        wsi = OCCWSIProposer(config=ProposerConfig(lanes=16)).propose(
            small_universe.genesis, pool1, CTX
        )
        pool2 = TxPool()
        pool2.add_many(sorted(txs, key=lambda t: t.nonce))
        batch = BatchOCCProposer(config=BatchOCCConfig(lanes=16)).propose(
            small_universe.genesis, pool2, CTX
        )
        assert len(wsi.committed) == len(batch.committed) == len(txs)
        assert wsi.stats.makespan < batch.stats.makespan
