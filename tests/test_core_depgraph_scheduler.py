"""Dependency-graph and scheduler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import Address
from repro.core.depgraph import build_dependency_graph
from repro.core.scheduler import SCHEDULER_POLICIES, schedule_components

A = [Address.from_int(i) for i in range(12)]


def fp(*indices):
    return frozenset(A[i] for i in indices)


class TestDependencyGraph:
    def test_disjoint_footprints_separate_components(self):
        g = build_dependency_graph([fp(0), fp(1), fp(2)])
        assert len(g.components) == 3
        assert g.largest_component_ratio() == pytest.approx(1 / 3)

    def test_shared_account_merges(self):
        g = build_dependency_graph([fp(0, 1), fp(1, 2), fp(3)])
        assert len(g.components) == 2
        assert g.components[0] == (0, 1)
        assert g.component_of[0] == g.component_of[1]
        assert g.component_of[2] != g.component_of[0]

    def test_transitive_closure(self):
        # 0-1 share a, 1-2 share b => all one component
        g = build_dependency_graph([fp(0), fp(0, 1), fp(1)])
        assert len(g.components) == 1
        assert g.components[0] == (0, 1, 2)

    def test_block_order_preserved_within_component(self):
        g = build_dependency_graph([fp(0), fp(1), fp(0), fp(1), fp(0)])
        assert g.components == ((0, 2, 4), (1, 3))

    def test_empty_block(self):
        g = build_dependency_graph([])
        assert g.components == ()
        assert g.largest_component_ratio() == 0.0
        assert g.critical_path_gas() == 0

    def test_gas_accounting(self):
        g = build_dependency_graph([fp(0), fp(0), fp(1)], gas=[10, 20, 5])
        assert g.component_gas(0) == 30
        assert g.component_gas(1) == 5
        assert g.critical_path_gas() == 30

    def test_gas_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_dependency_graph([fp(0)], gas=[1, 2])

    def test_single_component_ratio_is_one(self):
        g = build_dependency_graph([fp(0), fp(0), fp(0)])
        assert g.largest_component_ratio() == 1.0

    def test_networkx_export(self):
        g = build_dependency_graph([fp(0), fp(0), fp(1)])
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        assert nxg.has_edge(0, 1)
        assert not nxg.has_edge(0, 2)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(0, 8), min_size=1, max_size=3),
            max_size=30,
        )
    )
    def test_partition_properties(self, raw):
        footprints = [frozenset(A[i] for i in s) for s in raw]
        g = build_dependency_graph(footprints)
        # components partition the indices
        all_indices = sorted(i for comp in g.components for i in comp)
        assert all_indices == list(range(len(footprints)))
        # txs in different components never share an account
        for ci, comp_i in enumerate(g.components):
            accounts_i = set().union(*(footprints[t] for t in comp_i))
            for cj in range(ci + 1, len(g.components)):
                accounts_j = set().union(*(footprints[t] for t in g.components[cj]))
                assert not (accounts_i & accounts_j)


class TestScheduler:
    def make_graph(self, sizes_gas):
        """sizes_gas: list of (tx_count, per_tx_gas) per component."""
        footprints = []
        gas = []
        for comp_index, (count, g) in enumerate(sizes_gas):
            for _ in range(count):
                footprints.append(fp(comp_index))
                gas.append(g)
        return build_dependency_graph(footprints, gas)

    def test_gas_lpt_balances_load(self):
        graph = self.make_graph([(1, 100), (1, 60), (1, 50), (1, 10)])
        plan = schedule_components(graph, 2, "gas_lpt")
        loads = [
            sum(graph.component_gas(c) for c in comps)
            for comps in plan.lane_components
        ]
        assert sorted(loads) == [110, 110]

    def test_all_txs_scheduled_exactly_once(self):
        graph = self.make_graph([(3, 5), (2, 7), (4, 1)])
        for policy in SCHEDULER_POLICIES:
            plan = schedule_components(graph, 3, policy, seed=1)
            seen = sorted(t for lane in plan.lane_txs for t in lane)
            assert seen == list(range(9)), policy

    def test_block_order_within_component_preserved(self):
        graph = self.make_graph([(4, 5), (3, 5)])
        for policy in SCHEDULER_POLICIES:
            plan = schedule_components(graph, 2, policy, seed=3)
            for lane in plan.lane_txs:
                for comp in graph.components:
                    positions = [lane.index(t) for t in comp if t in lane]
                    assert positions == sorted(positions), policy

    def test_round_robin_ignores_load(self):
        graph = self.make_graph([(1, 1000), (1, 1000), (1, 1), (1, 1)])
        plan = schedule_components(graph, 2, "round_robin")
        assert plan.lane_components[0] == (0, 2)
        assert plan.lane_components[1] == (1, 3)

    def test_random_is_seed_deterministic(self):
        graph = self.make_graph([(2, 5)] * 6)
        p1 = schedule_components(graph, 3, "random", seed=9)
        p2 = schedule_components(graph, 3, "random", seed=9)
        p3 = schedule_components(graph, 3, "random", seed=10)
        assert p1.lane_components == p2.lane_components
        assert p1.lane_components != p3.lane_components or True  # may collide

    def test_unknown_policy_rejected(self):
        graph = self.make_graph([(1, 1)])
        with pytest.raises(ValueError):
            schedule_components(graph, 2, "voodoo")

    def test_zero_lanes_rejected(self):
        graph = self.make_graph([(1, 1)])
        with pytest.raises(ValueError):
            schedule_components(graph, 0)

    def test_more_lanes_than_components(self):
        graph = self.make_graph([(1, 5), (1, 5)])
        plan = schedule_components(graph, 8)
        non_empty = [lane for lane in plan.lane_txs if lane]
        assert len(non_empty) == 2

    def test_lane_of_tx_mapping(self):
        graph = self.make_graph([(2, 5), (1, 9)])
        plan = schedule_components(graph, 2)
        mapping = plan.lane_of_tx()
        assert set(mapping) == {0, 1, 2}

    def test_gas_lpt_beats_round_robin_on_skew(self):
        """On heavily skewed components, gas-LPT's makespan estimate wins."""
        graph = self.make_graph([(1, 100), (1, 99), (1, 1), (1, 1), (1, 1), (1, 1)])
        lpt = schedule_components(graph, 2, "gas_lpt")
        rr = schedule_components(graph, 2, "round_robin")

        def makespan(plan):
            return max(
                sum(graph.component_gas(c) for c in comps)
                for comps in plan.lane_components
            )

        assert makespan(lpt) <= makespan(rr)
