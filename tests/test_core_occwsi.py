"""OCC-WSI proposer tests: packing, abort semantics, serializability.

The central property (checked here and relied on everywhere): replaying
the committed transactions *serially in commit order* over the same base
state reproduces exactly the state OCC-WSI materialises — i.e. the
parallel schedule is serializable and the block order is its witness.
"""


from repro.common.types import Address
from repro.core.baselines import SerialExecutor
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

ETHER = 10**18
CTX = ExecutionContext(block_number=1, timestamp=12)


def simple_world(n=10):
    eoas = [Address.from_int(0x100 + i) for i in range(n)]
    return eoas, genesis_snapshot({a: AccountData(balance=ETHER) for a in eoas})


def payment(sender, to, nonce=0, price=10, value=100):
    return Transaction(sender, to, value, b"", 60_000, price, nonce)


def run_proposer(base, txs, lanes=4, **cfg):
    pool = TxPool()
    pool.add_many(sorted(txs, key=lambda t: t.nonce))
    proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes, **cfg))
    return proposer.propose(base, pool, CTX), pool


class TestPacking:
    def test_packs_all_independent_txs(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, pool = run_proposer(base, txs)
        assert len(result.committed) == 5
        assert len(pool) == 0
        assert result.stats.aborts == 0  # fully disjoint

    def test_versions_are_sequential(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, _ = run_proposer(base, txs)
        assert [c.version for c in result.committed] == [1, 2, 3, 4, 5]

    def test_gas_limit_respected(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, pool = run_proposer(base, txs, gas_limit=21000 * 2)
        # limit reached after ~2 txs; the rest stay pooled
        assert 2 <= len(result.committed) <= 3
        assert len(pool) == 5 - len(result.committed)

    def test_max_txs_respected(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 5]) for i in range(5)]
        result, _ = run_proposer(base, txs, max_txs=3)
        assert len(result.committed) == 3

    def test_same_sender_nonce_order_in_block(self):
        eoas, base = simple_world()
        txs = [payment(eoas[0], eoas[1], nonce=n, price=10 + n) for n in range(4)]
        result, _ = run_proposer(base, txs)
        nonces = [c.tx.nonce for c in result.committed]
        assert nonces == [0, 1, 2, 3]

    def test_invalid_tx_dropped(self):
        eoas, base = simple_world()
        bad = payment(eoas[0], eoas[1], value=100 * ETHER)  # unaffordable
        good = payment(eoas[2], eoas[3])
        result, _ = run_proposer(base, [bad, good])
        assert len(result.committed) == 1
        assert result.invalid_dropped == 1

    def test_empty_pool(self):
        _, base = simple_world()
        result, _ = run_proposer(base, [])
        assert result.committed == []
        assert result.stats.makespan == 0.0


class TestConflicts:
    def test_conflicting_payments_all_commit(self):
        # many payments to the same receiver: balance read-write chain
        eoas, base = simple_world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(8)]
        result, _ = run_proposer(base, txs, lanes=8)
        assert len(result.committed) == 8
        assert result.stats.aborts > 0  # contention produced retries
        final = result.final_state()
        assert final.account(hot).balance == ETHER + 8 * 100

    def test_single_lane_never_aborts(self):
        eoas, base = simple_world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(8)]
        result, _ = run_proposer(base, txs, lanes=1)
        assert result.stats.aborts == 0

    def test_retries_exhausted_drops_tx(self):
        eoas, base = simple_world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(6)]
        result, _ = run_proposer(base, txs, lanes=6, max_retries=1)
        assert result.retries_exhausted > 0
        assert len(result.committed) + result.retries_exhausted == 6


class TestSerializability:
    def replay_serially(self, base, committed, coinbase=None):
        db = StateDB(base)
        evm = EVM()
        for c in committed:
            evm.apply_transaction(db, c.tx, CTX)
        return db.commit()

    def test_commit_order_replay_matches_parallel_state(self):
        eoas, base = simple_world()
        hot = eoas[9]
        txs = [payment(eoas[i], hot) for i in range(6)]
        txs += [payment(eoas[6], eoas[7]), payment(eoas[8], eoas[5])]
        result, _ = run_proposer(base, txs, lanes=8)
        assert len(result.committed) == 8
        parallel_state = result.final_state()
        serial_state = self.replay_serially(base, result.committed)
        assert parallel_state.state_root() == serial_state.state_root()

    def test_serializability_under_heavy_contention(self, small_universe, small_generator):
        txs = small_generator.generate_block_txs()
        result, pool = run_proposer(small_universe.genesis, txs, lanes=16)
        assert len(pool) == 0
        parallel_state = result.final_state()
        ctx = CTX
        db = StateDB(small_universe.genesis)
        evm = EVM()
        for c in result.committed:
            evm.apply_transaction(db, c.tx, ctx)
        assert db.commit().state_root() == parallel_state.state_root()

    def test_rw_sets_match_serial_replay(self, small_universe, small_generator):
        """The profile rw-sets the proposer publishes are exactly what a
        serial re-execution in block order observes (what Algorithm 2
        checks on the validator side)."""
        from repro.state.access import RecordingState

        txs = small_generator.generate_block_txs()
        result, _ = run_proposer(small_universe.genesis, txs, lanes=16)
        db = StateDB(small_universe.genesis)
        evm = EVM()
        for c in result.committed:
            rec = RecordingState(db)
            replay = evm.apply_transaction(rec, c.tx, CTX)
            assert replay.gas_used == c.result.gas_used
            assert replay.success == c.result.success
            assert set(rec.rw.reads) == set(c.rw.reads)
            assert rec.rw.writes == c.rw.writes


class TestStatsAndDeterminism:
    def test_parallel_not_slower_than_serial_often(self, small_universe, small_generator):
        txs = small_generator.generate_block_txs()
        result, _ = run_proposer(small_universe.genesis, txs, lanes=8)
        serial = SerialExecutor()
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        sres = serial.propose_serial(small_universe.genesis, pool, CTX)
        assert result.stats.makespan < sres.total_time

    def test_deterministic_given_same_inputs(self, small_universe, small_generator):
        txs = small_generator.generate_block_txs()
        r1, _ = run_proposer(small_universe.genesis, txs, lanes=8)
        r2, _ = run_proposer(small_universe.genesis, txs, lanes=8)
        assert [c.tx.hash for c in r1.committed] == [c.tx.hash for c in r2.committed]
        assert r1.stats.makespan == r2.stats.makespan
        assert r1.final_state().state_root() == r2.final_state().state_root()

    def test_stats_consistency(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[9]) for i in range(5)]
        result, _ = run_proposer(base, txs, lanes=4)
        assert result.stats.tasks == len(result.committed) + result.stats.aborts
        assert result.stats.extra["committed"] == len(result.committed)

    def test_fees_accumulated(self):
        eoas, base = simple_world()
        txs = [payment(eoas[i], eoas[i + 5], price=7) for i in range(3)]
        result, _ = run_proposer(base, txs)
        assert result.total_fees == 3 * 21000 * 7

    def test_final_state_with_coinbase(self):
        eoas, base = simple_world()
        coinbase = Address.from_int(0xFEE)
        txs = [payment(eoas[0], eoas[1], price=2)]
        result, _ = run_proposer(base, txs)
        state = result.final_state(coinbase=coinbase)
        assert state.account(coinbase).balance == 21000 * 2
