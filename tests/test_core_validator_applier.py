"""Validator + applier tests: acceptance, Algorithm-2 rejection paths,
phase timing, and fault injection against tampered blocks/profiles."""

import dataclasses

import pytest

from repro.chain.block import Block, BlockProfile, TxProfileEntry
from repro.common.types import Address
from repro.core.applier import Applier, ProfileMismatch
from repro.core.baselines import SerialExecutor
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.faults.errors import FailureReason
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode
from repro.state.access import FrozenRWSet, ReadWriteSet, storage_key


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    node = ProposerNode("alice")
    return node.build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestAcceptance:
    def test_honest_block_accepted(self, sealed, small_universe):
        validator = ParallelValidator()
        res = validator.validate_block(sealed.block, small_universe.genesis)
        assert res.accepted, res.reason
        assert res.post_state.state_root() == sealed.block.header.state_root

    def test_matches_serial_execution(self, sealed, small_universe):
        validator = ParallelValidator()
        serial = SerialExecutor()
        res = validator.validate_block(sealed.block, small_universe.genesis)
        sres = serial.execute_block(sealed.block, small_universe.genesis)
        assert res.post_state.state_root() == sres.post_state.state_root()

    def test_phase_times_ordered(self, sealed, small_universe):
        res = ParallelValidator().validate_block(sealed.block, small_universe.genesis)
        p = res.phases
        assert 0 < p.prep_end <= p.exec_end <= p.validate_end < p.commit_end

    def test_speedup_positive_and_bounded(self, sealed, small_universe):
        for lanes in (1, 2, 8):
            res = ParallelValidator(
                config=ValidatorConfig(lanes=lanes)
            ).validate_block(sealed.block, small_universe.genesis)
            assert res.accepted
            assert 0.2 < res.speedup <= lanes + 1

    def test_more_lanes_never_hurt_much(self, sealed, small_universe):
        r2 = ParallelValidator(config=ValidatorConfig(lanes=2)).validate_block(
            sealed.block, small_universe.genesis
        )
        r16 = ParallelValidator(config=ValidatorConfig(lanes=16)).validate_block(
            sealed.block, small_universe.genesis
        )
        assert r16.makespan <= r2.makespan * 1.01

    def test_empty_block_accepted(self, small_universe, genesis_chain):
        node = ProposerNode("alice")
        sealed = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, []
        )
        res = ParallelValidator().validate_block(sealed.block, small_universe.genesis)
        assert res.accepted
        assert res.graph.tx_count == 0

    def test_deterministic(self, sealed, small_universe):
        v = ParallelValidator()
        r1 = v.validate_block(sealed.block, small_universe.genesis)
        r2 = v.validate_block(sealed.block, small_universe.genesis)
        assert r1.makespan == r2.makespan
        assert r1.post_state.state_root() == r2.post_state.state_root()


def tamper(block: Block, **header_changes) -> Block:
    header = dataclasses.replace(block.header, **header_changes)
    return dataclasses.replace(block, header=header)


class TestRejection:
    def test_wrong_state_root_rejected(self, sealed, small_universe):
        from repro.common.types import Hash32

        bad = tamper(sealed.block, state_root=Hash32(b"\x01" * 32))
        res = ParallelValidator().validate_block(bad, small_universe.genesis)
        assert not res.accepted
        assert "state root" in res.reason

    def test_wrong_gas_used_rejected(self, sealed, small_universe):
        bad = tamper(sealed.block, gas_used=sealed.block.header.gas_used + 1)
        res = ParallelValidator().validate_block(bad, small_universe.genesis)
        assert not res.accepted
        assert "gas" in res.reason

    def test_tampered_tx_list_rejected(self, sealed, small_universe):
        block = sealed.block
        reordered = dataclasses.replace(
            block, transactions=tuple(reversed(block.transactions))
        )
        res = ParallelValidator().validate_block(reordered, small_universe.genesis)
        assert not res.accepted
        assert "structure" in res.reason

    def test_missing_profile_rejected_by_default(self, sealed, small_universe):
        stripped = dataclasses.replace(sealed.block, profile=None)
        res = ParallelValidator().validate_block(stripped, small_universe.genesis)
        assert not res.accepted
        assert "profile" in res.reason

    def test_missing_profile_fallback_accepts(self, sealed, small_universe):
        stripped = dataclasses.replace(sealed.block, profile=None)
        validator = ParallelValidator(
            config=ValidatorConfig(preexecute_fallback=True)
        )
        res = validator.validate_block(stripped, small_universe.genesis)
        assert res.accepted
        # the fallback pays serial pre-execution in the preparation phase
        assert res.prep_cost > sum(res.tx_costs)

    def test_lying_profile_rw_set_rejected(self, sealed, small_universe):
        block = sealed.block
        entries = list(block.profile.entries)
        victim = entries[0]
        fake_rw = ReadWriteSet()
        fake_rw.record_write(storage_key(Address.from_int(0x666), 1), 1)
        entries[0] = dataclasses.replace(victim, rw=fake_rw.freeze())
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        res = ParallelValidator().validate_block(lying, small_universe.genesis)
        assert not res.accepted
        assert "profile mismatch" in res.reason

    def test_lying_profile_gas_rejected(self, sealed, small_universe):
        block = sealed.block
        entries = list(block.profile.entries)
        entries[2] = dataclasses.replace(entries[2], gas_used=entries[2].gas_used + 1)
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        res = ParallelValidator().validate_block(lying, small_universe.genesis)
        assert not res.accepted
        assert "tx 2" in res.reason

    def test_wrong_parent_state_rejected(self, sealed, small_universe):
        from repro.state.statedb import StateDB

        db = StateDB(small_universe.genesis)
        db.add_balance(Address.from_int(0x1000_0000), 12345)
        divergent = db.commit()
        res = ParallelValidator().validate_block(sealed.block, divergent)
        assert not res.accepted

    def test_profile_verification_can_be_disabled(self, sealed, small_universe):
        """Ablation: with verify_profile=False a lying rw-set passes the
        per-tx check but the state root still protects the chain."""
        block = sealed.block
        entries = list(block.profile.entries)
        fake_rw = ReadWriteSet()
        fake_rw.record_write(storage_key(Address.from_int(0x666), 1), 1)
        entries[0] = dataclasses.replace(entries[0], rw=fake_rw.freeze())
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        validator = ParallelValidator(config=ValidatorConfig(verify_profile=False))
        res = validator.validate_block(lying, small_universe.genesis)
        # state root still matches (execution was honest), so accepted:
        # the profile lie only corrupted scheduling hints
        assert res.accepted


class TestAdversarialProfileMatrix:
    """Every corruption kind maps to exactly one typed FailureReason.

    The matrix pins the failure *taxonomy*, not just rejection: a
    validator that rejects a lying profile as a state-root mismatch has
    lost the diagnostic that tells operators which peer lied and how.
    """

    MATRIX = [
        ("drop_profile", FailureReason.MALFORMED_BLOCK),
        ("truncate_txs", FailureReason.MALFORMED_BLOCK),
        ("reorder_txs", FailureReason.MALFORMED_BLOCK),
        ("state_root", FailureReason.STATE_ROOT_MISMATCH),
        ("header_gas", FailureReason.RECEIPT_MISMATCH),
        ("profile_read_drop", FailureReason.PROFILE_READ_MISMATCH),
        ("profile_read_add", FailureReason.PROFILE_READ_MISMATCH),
        ("profile_write_swap", FailureReason.PROFILE_WRITE_MISMATCH),
        ("profile_write_value", FailureReason.PROFILE_WRITE_MISMATCH),
        ("profile_gas", FailureReason.PROFILE_GAS_MISMATCH),
        ("profile_status", FailureReason.PROFILE_GAS_MISMATCH),
    ]

    @pytest.mark.parametrize("kind,expected", MATRIX, ids=[k for k, _ in MATRIX])
    def test_corruption_yields_typed_reason(
        self, sealed, small_universe, kind, expected
    ):
        corrupted = FaultInjector(FaultConfig(seed=3)).corrupt_block(
            sealed.block, kind
        )
        res = ParallelValidator().validate_block(corrupted, small_universe.genesis)
        assert not res.accepted
        assert res.failure is not None
        assert res.failure.reason is expected, (
            f"{kind}: got {res.failure.reason}, want {expected}"
        )

    @pytest.mark.parametrize("kind,expected", MATRIX, ids=[k for k, _ in MATRIX])
    def test_corruption_seed_independent(
        self, sealed, small_universe, kind, expected
    ):
        # the *reason* must not depend on which tx the injector picked
        corrupted = FaultInjector(FaultConfig(seed=1234)).corrupt_block(
            sealed.block, kind
        )
        res = ParallelValidator().validate_block(corrupted, small_universe.genesis)
        assert not res.accepted
        assert res.failure.reason is expected

    def test_swapped_rw_sets_between_entries_rejected(
        self, sealed, small_universe
    ):
        # hand-rolled shuffle: two entries trade whole rw-sets
        block = sealed.block
        entries = list(block.profile.entries)
        i, j = 0, len(entries) - 1
        assert entries[i].rw != entries[j].rw
        entries[i], entries[j] = (
            dataclasses.replace(entries[i], rw=entries[j].rw),
            dataclasses.replace(entries[j], rw=entries[i].rw),
        )
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        res = ParallelValidator().validate_block(lying, small_universe.genesis)
        assert not res.accepted
        assert res.failure.reason in (
            FailureReason.PROFILE_READ_MISMATCH,
            FailureReason.PROFILE_WRITE_MISMATCH,
        )

    def test_superset_profile_rejected(self, sealed, small_universe):
        # declaring MORE than the tx touches is as dishonest as less: an
        # inflated footprint degrades the schedule other validators build
        block = sealed.block
        entries = list(block.profile.entries)
        victim = entries[0]
        padded = FrozenRWSet(
            reads=victim.rw.reads
            + ((storage_key(Address.from_int(0x7777), 1), 0),),
            writes=victim.rw.writes,
        )
        entries[0] = dataclasses.replace(victim, rw=padded)
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        res = ParallelValidator().validate_block(lying, small_universe.genesis)
        assert not res.accepted
        assert res.failure.reason is FailureReason.PROFILE_READ_MISMATCH

    def test_subset_profile_rejected(self, sealed, small_universe):
        block = sealed.block
        entries = list(block.profile.entries)
        victim = next(e for e in entries if e.rw.reads)
        index = entries.index(victim)
        stripped = FrozenRWSet(reads=victim.rw.reads[1:], writes=victim.rw.writes)
        entries[index] = dataclasses.replace(victim, rw=stripped)
        lying = dataclasses.replace(block, profile=BlockProfile(tuple(entries)))
        res = ParallelValidator().validate_block(lying, small_universe.genesis)
        assert not res.accepted
        assert res.failure.reason is FailureReason.PROFILE_READ_MISMATCH


class TestApplierUnit:
    def make_entry(self, rw: ReadWriteSet, gas=1000, success=True):
        from repro.common.hashing import hash_of

        return TxProfileEntry(
            tx_hash=hash_of(b"t"), rw=rw.freeze(), gas_used=gas, success=success
        )

    def test_exact_match_passes(self):
        rw = ReadWriteSet()
        rw.record_read(storage_key(Address.from_int(1), 0), 0)
        rw.record_write(storage_key(Address.from_int(1), 0), 5)
        entry = self.make_entry(rw)

        class R:
            gas_used = 1000
            success = True

        Applier().verify_tx(0, entry, rw, R())

    def test_read_versions_not_compared(self):
        rw_prop = ReadWriteSet()
        rw_prop.record_read(storage_key(Address.from_int(1), 0), version=7)
        rw_val = ReadWriteSet()
        rw_val.record_read(storage_key(Address.from_int(1), 0), version=0)
        entry = self.make_entry(rw_prop)

        class R:
            gas_used = 1000
            success = True

        Applier().verify_tx(0, entry, rw_val, R())  # must not raise

    def test_extra_read_rejected(self):
        entry = self.make_entry(ReadWriteSet())
        rw = ReadWriteSet()
        rw.record_read(storage_key(Address.from_int(1), 0), 0)

        class R:
            gas_used = 1000
            success = True

        with pytest.raises(ProfileMismatch, match="read set"):
            Applier().verify_tx(3, entry, rw, R())

    def test_wrong_write_value_rejected(self):
        rw_prop = ReadWriteSet()
        rw_prop.record_write(storage_key(Address.from_int(1), 0), 5)
        rw_val = ReadWriteSet()
        rw_val.record_write(storage_key(Address.from_int(1), 0), 6)
        entry = self.make_entry(rw_prop)

        class R:
            gas_used = 1000
            success = True

        with pytest.raises(ProfileMismatch, match="write set"):
            Applier().verify_tx(0, entry, rw_val, R())

    def test_status_mismatch_rejected(self):
        entry = self.make_entry(ReadWriteSet(), success=True)

        class R:
            gas_used = 1000
            success = False

        with pytest.raises(ProfileMismatch, match="status"):
            Applier().verify_tx(0, entry, ReadWriteSet(), R())
