"""Distributed sharded validation: partition properties, bit-identity,
and the follower fault matrix.

The load-bearing claim of :mod:`repro.distributed` is that *any* shard
partitioning reproduces single-node validation bit for bit — same state
root, same receipts, same gas — because dependency-graph components are
account-disjoint.  The property tests here draw arbitrary partitions
(including one-shard and one-component-per-shard) and check exactly that;
the fault matrix pins follower crash / straggler / byzantine replies to
their typed :class:`~repro.faults.errors.FailureReason` mappings.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.core.artifacts import artifacts_for
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.distributed import (
    DistributedConfig,
    DistributedValidator,
    ShardCoordinator,
    partition_components,
)
from repro.evm.interpreter import ExecutionContext
from repro.exec.sharding import build_shard_work
from repro.faults.errors import FailureReason
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode
from repro.network.shardrpc import FollowerNode, ShardAssignment
from repro.network.simnet import NetworkConfig, NetworkSimulation
from repro.workload.generator import BlockWorkloadGenerator
from repro.workload.scenarios import (
    hotspot_scenario,
    mainnet_scenario,
    payment_heavy_scenario,
)

pytestmark = pytest.mark.distributed


# --------------------------------------------------------------------- #
# partitioning                                                          #
# --------------------------------------------------------------------- #


class TestPartition:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            partition_components([1, 2, 3], 0)

    def test_empty_components(self):
        plan = partition_components([], 4)
        assert plan.shards == () and plan.gas == ()

    def test_fewer_components_than_shards(self):
        plan = partition_components([10, 20], 5)
        assert plan.n_shards == 2
        assert sorted(c for shard in plan.shards for c in shard) == [0, 1]

    def test_lpt_balances_skewed_load(self):
        # one heavy component cannot be split; the rest spread around it
        plan = partition_components([100, 10, 10, 10, 10, 10, 10], 3)
        assert plan.n_shards == 3
        assert max(plan.gas) == 100  # heavy component alone in its shard

    @given(
        gas=st.lists(st.integers(min_value=0, max_value=10**6), max_size=40),
        n_shards=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_cover(self, gas, n_shards):
        plan = partition_components(gas, n_shards)
        members = sorted(c for shard in plan.shards for c in shard)
        assert members == list(range(len(gas)))  # every component, once
        assert len(plan.gas) == plan.n_shards
        for shard, load in zip(plan.shards, plan.gas):
            assert load == sum(gas[c] for c in shard)
        assert plan.n_shards == min(n_shards, len(gas)) or not gas

    def test_deterministic(self):
        gas = [7, 3, 9, 1, 4, 4]
        assert partition_components(gas, 3) == partition_components(gas, 3)


# --------------------------------------------------------------------- #
# bit-identity                                                          #
# --------------------------------------------------------------------- #


def _seal_block(universe, workload_config):
    generator = BlockWorkloadGenerator(universe, workload_config)
    chain = Blockchain(universe.genesis)
    txs = generator.generate_block_txs()
    sealed = ProposerNode("dist-test").build_block(
        chain.genesis.header, universe.genesis, txs
    )
    return sealed.block


def _fingerprint(result):
    return (
        result.post_state.state_root(),
        [(r.gas_used, r.success, r.fee) for r in result.tx_results],
    )


SCENARIOS = {
    "payment_heavy": lambda: payment_heavy_scenario(seed=3),
    "hotspot": lambda: hotspot_scenario(0.9, seed=3),
    "mainnet": lambda: mainnet_scenario(seed=4),
}


class TestBitIdentity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("followers", [1, 4])
    def test_matches_single_node_on_conformance_scenarios(
        self, small_universe, scenario, followers
    ):
        cfg = dataclasses.replace(
            SCENARIOS[scenario](), txs_per_block=40, tx_count_jitter=0.0
        )
        block = _seal_block(small_universe, cfg)
        reference = ParallelValidator().validate_block(
            block, small_universe.genesis
        )
        assert reference.accepted

        dv = DistributedValidator(followers)
        distributed = dv.validate(block, small_universe.genesis)
        assert distributed.accepted and distributed.used_distributed
        assert _fingerprint(distributed) == _fingerprint(reference)
        record = dv.last_record
        assert record is not None and record.fallback is None
        assert 1 <= record.n_shards <= followers

    def test_per_component_shards(self, small_universe, small_generator):
        """More followers than components: every component its own shard."""
        block = _seal_block(
            small_universe,
            dataclasses.replace(
                payment_heavy_scenario(seed=3), txs_per_block=24, tx_count_jitter=0.0
            ),
        )
        art = artifacts_for(block, "account")
        n_components = len(art.graph.components)
        dv = DistributedValidator(n_components + 8)
        reference = ParallelValidator().validate_block(block, small_universe.genesis)
        distributed = dv.validate(block, small_universe.genesis)
        assert distributed.accepted and distributed.used_distributed
        assert dv.last_record.n_shards == n_components
        assert _fingerprint(distributed) == _fingerprint(reference)

    @given(data=st.data())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_partition_reproduces_reference(
        self, small_universe, data
    ):
        """Arbitrary component->shard maps merge to the reference result.

        Bypasses the coordinator's LPT planner entirely: hypothesis draws
        the partition, honest followers execute it, and the coordinator's
        merge must still reproduce the single-node outcome bit for bit.
        """
        # fresh nonce map per example: block building must not depend on
        # what previous examples generated, or draw bounds shift
        universe = dataclasses.replace(small_universe, nonces={})
        block = _seal_block(
            universe,
            dataclasses.replace(
                payment_heavy_scenario(seed=5), txs_per_block=30, tx_count_jitter=0.0
            ),
        )
        reference = ParallelValidator().validate_block(block, universe.genesis)
        assert reference.accepted

        art = artifacts_for(block, "account")
        graph = art.graph
        footprints = art.component_footprints()
        gas = art.component_gas()
        n_components = len(graph.components)
        n_shards = data.draw(st.integers(min_value=1, max_value=n_components))
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n_shards - 1),
                min_size=n_components,
                max_size=n_components,
            )
        )

        shards = {}
        for comp, shard in enumerate(assignment):
            shards.setdefault(shard, []).append(comp)
        follower = FollowerNode("prop-follower")
        ctx = ExecutionContext(
            block_number=block.header.number,
            timestamp=block.header.timestamp,
            coinbase=block.header.coinbase,
            gas_limit=block.header.gas_limit,
        )
        resolved = {}
        for shard_id, comps in sorted(shards.items()):
            works = tuple(
                build_shard_work(
                    block,
                    universe.genesis,
                    comp,
                    graph.components[comp],
                    footprints[comp],
                    gas[comp],
                )
                for comp in comps
            )
            reply = follower.handle(
                ShardAssignment(
                    block_hash=block.hash,
                    shard_id=shard_id,
                    attempt=0,
                    works=works,
                    ctx=ctx,
                )
            )
            assert reply is not None
            resolved[shard_id] = reply

        outcome = ShardCoordinator._merge(
            None, block, universe.genesis, graph, resolved
        )
        from repro.chain.params import DEFAULT_CHAIN_PARAMS
        from repro.core.proposer import finalize_block_state

        post_state = finalize_block_state(
            outcome.db.commit(),
            coinbase=block.header.coinbase,
            total_fees=outcome.total_fees,
            block_number=block.number,
            uncles=block.uncles,
            params=DEFAULT_CHAIN_PARAMS,
        )
        assert post_state.state_root() == reference.post_state.state_root()
        assert [
            (r.gas_used, r.success, r.fee) for r in outcome.tx_results
        ] == [(r.gas_used, r.success, r.fee) for r in reference.tx_results]

    def test_simnet_followers_match_baseline(self, small_universe):
        def run(followers):
            uni = dataclasses.replace(small_universe, nonces={})
            sim = NetworkSimulation(
                uni,
                config=NetworkConfig(
                    rounds=3, n_proposers=2, seed=7, followers=followers
                ),
            )
            return sim.run()

        baseline, sharded = run(0), run(4)
        assert sharded.total_txs == baseline.total_txs > 0
        assert sharded.final_root_hex == baseline.final_root_hex
        assert sharded.chains_agree


# --------------------------------------------------------------------- #
# fault matrix                                                          #
# --------------------------------------------------------------------- #


@pytest.fixture()
def sealed_block(small_universe):
    return _seal_block(
        small_universe,
        dataclasses.replace(
            payment_heavy_scenario(seed=3), txs_per_block=40, tx_count_jitter=0.0
        ),
    )


@pytest.mark.faults
class TestFollowerFaultMatrix:
    def test_total_crash_maps_to_worker_fault(self, small_universe, sealed_block):
        injector = FaultInjector(FaultConfig(seed=3, follower_crash_rate=1.0))
        dv = DistributedValidator(
            4, injector=injector, config=ValidatorConfig(serial_fallback=False)
        )
        result = dv.validate(sealed_block, small_universe.genesis)
        assert not result.accepted
        assert result.failure is not None
        assert result.failure.reason is FailureReason.WORKER_FAULT
        assert "crash" in result.failure.detail
        # the whole pool died on first contact: one fault per follower
        assert dv.last_record.follower_faults == 4

    def test_crash_degrades_to_serial_fallback(self, small_universe, sealed_block):
        reference = ParallelValidator().validate_block(
            sealed_block, small_universe.genesis
        )
        injector = FaultInjector(FaultConfig(seed=3, follower_crash_rate=1.0))
        dv = DistributedValidator(4, injector=injector)
        result = dv.validate(sealed_block, small_universe.genesis)
        assert result.accepted and not result.used_distributed
        assert dv.last_record.fallback == "worker_fault"
        assert _fingerprint(result) == _fingerprint(reference)

    def test_byzantine_reply_maps_to_worker_fault(
        self, small_universe, sealed_block
    ):
        injector = FaultInjector(FaultConfig(seed=3, follower_byzantine_rate=1.0))
        dv = DistributedValidator(
            4, injector=injector, config=ValidatorConfig(serial_fallback=False)
        )
        result = dv.validate(sealed_block, small_universe.genesis)
        assert not result.accepted
        assert result.failure.reason is FailureReason.WORKER_FAULT
        assert "byzantine" in result.failure.detail
        # a lying follower must never strike the (honest) proposer
        statuses = {a.status for a in dv.last_record.attempts}
        assert statuses == {"byzantine"}

    def test_byzantine_reply_survived_by_fallback(
        self, small_universe, sealed_block
    ):
        reference = ParallelValidator().validate_block(
            sealed_block, small_universe.genesis
        )
        injector = FaultInjector(FaultConfig(seed=3, follower_byzantine_rate=1.0))
        dv = DistributedValidator(4, injector=injector)
        result = dv.validate(sealed_block, small_universe.genesis)
        assert result.accepted
        assert _fingerprint(result) == _fingerprint(reference)

    def test_straggler_exhaustion_maps_to_timeout(
        self, small_universe, sealed_block
    ):
        # seed chosen so some-but-not-most shards stall: the median-based
        # deadline then flags the stalled replies as stragglers
        injector = FaultInjector(FaultConfig(seed=1, follower_stall_rate=0.4))
        dv = DistributedValidator(
            4,
            injector=injector,
            dist_config=DistributedConfig(n_followers=4, max_reassignments=0),
            config=ValidatorConfig(serial_fallback=False),
        )
        result = dv.validate(sealed_block, small_universe.genesis)
        assert not result.accepted
        assert result.failure.reason is FailureReason.TIMEOUT
        assert "straggled" in result.failure.detail

    def test_partial_crash_recovers_via_reassignment(
        self, small_universe, sealed_block
    ):
        reference = ParallelValidator().validate_block(
            sealed_block, small_universe.genesis
        )
        recovered = 0
        for seed in range(12):
            injector = FaultInjector(
                FaultConfig(seed=seed, follower_crash_rate=0.3)
            )
            dv = DistributedValidator(4, injector=injector)
            result = dv.validate(sealed_block, small_universe.genesis)
            record = dv.last_record
            assert result.accepted
            if result.used_distributed and record.reassignments > 0:
                recovered += 1
                assert _fingerprint(result) == _fingerprint(reference)
        assert recovered > 0, "no seed exercised crash-then-recover"

    def test_reassignment_rolls_fresh_faults(self):
        """The fault key includes the attempt, so a re-dispatch re-rolls."""
        injector = FaultInjector(FaultConfig(seed=0, follower_crash_rate=0.5))
        block_hash = b"\x07" * 32
        rolls = {
            attempt: injector.follower_fault(block_hash, 0, "f-0", attempt).crash
            for attempt in range(32)
        }
        assert set(rolls.values()) == {True, False}

    def test_lying_proposer_still_rejected_under_distribution(
        self, small_universe
    ):
        """A corrupted profile is the proposer's fault, never a follower's.

        The tampered entries make honest follower replies look byzantine;
        exhaustion falls back to local validation, which rejects with the
        proper profile reason so quarantine strikes the right party.
        """
        block = _seal_block(
            small_universe,
            dataclasses.replace(
                payment_heavy_scenario(seed=3), txs_per_block=20, tx_count_jitter=0.0
            ),
        )
        injector = FaultInjector(FaultConfig(seed=3))
        corrupted = injector.corrupt_block(block, "profile_gas")
        dv = DistributedValidator(4)
        result = dv.validate(corrupted, small_universe.genesis)
        assert not result.accepted
        assert result.failure is not None
        assert result.failure.reason in {
            FailureReason.PROFILE_GAS_MISMATCH,
            FailureReason.PROFILE_READ_MISMATCH,
            FailureReason.PROFILE_WRITE_MISMATCH,
        }
