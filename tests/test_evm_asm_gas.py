"""Tests for the assembler DSL and the gas schedule helpers."""

import pytest

from repro.evm.asm import Assembler, AssemblyError, asm
from repro.evm.gas import DEFAULT_GAS_SCHEDULE, GasSchedule, intrinsic_gas
from repro.evm.opcodes import OPCODES, opcode_by_name


class TestOpcodeTable:
    def test_no_gaps_in_push_dup_swap(self):
        for n in range(1, 33):
            assert opcode_by_name(f"PUSH{n}").code == 0x60 + n - 1
        for n in range(1, 17):
            assert opcode_by_name(f"DUP{n}").code == 0x80 + n - 1
            assert opcode_by_name(f"SWAP{n}").code == 0x90 + n - 1

    def test_categories_cover_cost_model(self):
        from repro.simcore.costmodel import DEFAULT_WEIGHTS

        categories = {op.category for op in OPCODES.values()}
        # every interpreter category must be priced
        missing = categories - set(DEFAULT_WEIGHTS)
        assert not missing, f"unpriced categories: {missing}"

    def test_storage_ops_are_expensive(self):
        assert opcode_by_name("SLOAD").gas >= 100 * opcode_by_name("ADD").gas


class TestAssembler:
    def test_simple_program(self):
        code = Assembler().push(1).push(2).op("ADD").op("STOP").assemble()
        assert code == bytes([0x60, 1, 0x60, 2, 0x01, 0x00])

    def test_push_auto_width(self):
        code = Assembler().push(0x1234).assemble()
        assert code == bytes([0x61, 0x12, 0x34])  # PUSH2

    def test_push_explicit_width(self):
        code = Assembler().push(1, width=4).assemble()
        assert code == bytes([0x63, 0, 0, 0, 1])

    def test_push_width_too_small(self):
        with pytest.raises(AssemblyError):
            Assembler().push(0x1234, width=1)

    def test_push_negative_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().push(-1)

    def test_label_forward_reference(self):
        code = Assembler().jump_to("end").op("POP").label("end").assemble()
        # PUSH2 0x0005 JUMP POP JUMPDEST (label sits at offset 5)
        assert code == bytes([0x61, 0x00, 0x05, 0x56, 0x50, 0x5B])

    def test_duplicate_label_rejected(self):
        a = Assembler().label("x").label("x")
        with pytest.raises(AssemblyError):
            a.assemble()

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().jump_to("nowhere").assemble()

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().op("FROBNICATE")

    def test_push_via_op_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler().op("PUSH1")

    def test_asm_shorthand(self):
        code = asm([1, 2, "ADD", "STOP"])
        assert code == bytes([0x60, 1, 0x60, 2, 0x01, 0x00])

    def test_asm_labels(self):
        code = asm([("jump", "end"), "POP", (":", "end")])
        assert code[-1] == 0x5B

    def test_asm_rejects_bool(self):
        with pytest.raises(AssemblyError):
            asm([True])

    def test_asm_rejects_unknown_directive(self):
        with pytest.raises(AssemblyError):
            asm([("?", "x")])

    def test_push_bytes(self):
        code = Assembler().push_bytes(b"\xaa\xbb").assemble()
        assert code == bytes([0x61, 0xAA, 0xBB])

    def test_push_bytes_length_limits(self):
        with pytest.raises(AssemblyError):
            Assembler().push_bytes(b"")
        with pytest.raises(AssemblyError):
            Assembler().push_bytes(b"\x00" * 33)


class TestGasSchedule:
    def test_memory_cost_quadratic(self):
        g = GasSchedule()
        linear_region = g.memory_cost(10) - g.memory_cost(9)
        far_region = g.memory_cost(10_000) - g.memory_cost(9_999)
        assert far_region > linear_region

    def test_memory_expansion_no_shrink_charge(self):
        g = GasSchedule()
        assert g.memory_expansion_cost(10, 5) == 0
        assert g.memory_expansion_cost(10, 10) == 0
        assert g.memory_expansion_cost(0, 1) == g.memory_cost(1)

    def test_sha3_cost_per_word(self):
        g = GasSchedule()
        assert g.sha3_cost(0) == 0
        assert g.sha3_cost(1) == g.sha3_word
        assert g.sha3_cost(32) == g.sha3_word
        assert g.sha3_cost(33) == 2 * g.sha3_word

    def test_sstore_cases(self):
        g = GasSchedule()
        assert g.sstore_cost(0, 5) == g.sstore_set
        assert g.sstore_cost(5, 7) == g.sstore_reset
        assert g.sstore_cost(5, 0) == g.sstore_reset
        assert g.sstore_cost(5, 5) == g.sstore_noop

    def test_exp_cost_by_exponent_size(self):
        g = GasSchedule()
        assert g.exp_cost(0) == 0
        assert g.exp_cost(255) == g.exp_byte
        assert g.exp_cost(256) == 2 * g.exp_byte

    def test_max_call_gas_keeps_64th(self):
        g = GasSchedule()
        assert g.max_call_gas(6400) == 6300

    def test_intrinsic_gas(self):
        g = DEFAULT_GAS_SCHEDULE
        assert intrinsic_gas(g, b"", False) == g.tx_base
        assert intrinsic_gas(g, b"\x00\x01", False) == (
            g.tx_base + g.tx_data_zero + g.tx_data_nonzero
        )
        assert intrinsic_gas(g, b"", True) == g.tx_base + g.tx_create
