"""Advanced call semantics: DELEGATECALL, reentrancy, stipends, depth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import Address
from repro.evm.asm import Assembler, asm
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from tests.test_evm_interpreter import CONTRACT, OTHER, SENDER, run_code, word

LIB = Address.from_int(0xEEEE)


class TestDelegateCall:
    def delegate_to_lib(self, out_size=0):
        """DELEGATECALL LIB with no calldata."""
        return [out_size, 0, 0, 0, LIB.to_int(), 200_000, "DELEGATECALL"]

    def test_writes_land_in_caller_storage(self):
        # library writes 7 to slot 1 — of the *caller's* storage
        lib_code = asm([7, 1, "SSTORE", "STOP"])
        program = asm(self.delegate_to_lib() + ["POP", "STOP"])
        result, state = run_code(
            program, extra={LIB: AccountData(code=lib_code)}
        )
        assert result.success, result.error
        assert state.get_storage(CONTRACT, 1) == 7
        assert state.get_storage(LIB, 1) == 0

    def test_caller_and_value_preserved(self):
        # library returns CALLER — must be the original tx sender, not the
        # delegating contract
        lib_code = asm(["CALLER", 0, "MSTORE", 32, 0, "RETURN"])
        program = asm(
            self.delegate_to_lib(out_size=32) + ["POP", 32, 0, "RETURN"]
        )
        result, _ = run_code(
            program, extra={LIB: AccountData(code=lib_code)}, value=0
        )
        assert result.success
        assert word(result) == SENDER.to_int()

    def test_empty_library_succeeds(self):
        program = asm(self.delegate_to_lib() + [0, "MSTORE", 32, 0, "RETURN"])
        result, _ = run_code(program)  # LIB has no code
        assert result.success
        assert word(result) == 1  # DELEGATECALL pushed success

    def test_failing_library_reverts_only_its_frame(self):
        lib_code = asm([9, 2, "SSTORE", "POP"])  # POP underflows after write
        program = asm(
            [5, 1, "SSTORE"]  # caller's own write first
            + self.delegate_to_lib()
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, state = run_code(program, extra={LIB: AccountData(code=lib_code)})
        assert result.success
        assert word(result) == 0  # delegatecall failed
        assert state.get_storage(CONTRACT, 1) == 5  # caller write intact
        assert state.get_storage(CONTRACT, 2) == 0  # library write reverted


class TestReentrancy:
    def test_reentrant_call_sees_callers_partial_state(self):
        """Classic reentrancy shape: A calls B, B calls back into A; the
        nested A-frame observes A's uncommitted storage write (no isolation
        between frames of one transaction — Ethereum semantics)."""
        # contract A: if slot0 == 0: set slot0 = 1, CALL B, then STOP
        #             else: (reentered) write slot1 = sload(0), STOP
        a = Assembler()
        a.push(0).op("SLOAD").jumpi_to("reentered")
        a.push(1).push(0).op("SSTORE")
        # call OTHER (B) with no data
        a.push(0).push(0).push(0).push(0).push(0)
        a.push(OTHER.to_int()).push(150_000).op("CALL").op("POP")
        a.op("STOP")
        a.label("reentered")
        a.push(0).op("SLOAD").push(1).op("SSTORE")
        a.op("STOP")
        a_code = a.assemble()

        # contract B: call back into A
        b = Assembler()
        b.push(0).push(0).push(0).push(0).push(0)
        b.push(CONTRACT.to_int()).push(100_000).op("CALL").op("POP").op("STOP")
        b_code = b.assemble()

        result, state = run_code(a_code, extra={OTHER: AccountData(code=b_code)})
        assert result.success, result.error
        # the reentered frame saw slot0 == 1 (the outer frame's write)
        assert state.get_storage(CONTRACT, 1) == 1

    def test_deep_recursion_bounded(self):
        """Self-recursion halts at the depth limit without blowing the
        Python stack or consuming unbounded gas."""
        a = Assembler()
        a.push(0).push(0).push(0).push(0).push(0)
        a.push(CONTRACT.to_int()).push(10_000_000).op("CALL")
        a.push(0).op("MSTORE").push(32).push(0).op("RETURN")
        result, _ = run_code(a.assemble(), gas=5_000_000)
        assert result.success  # outermost frame survives


class TestStateDBJournalProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["balance", "nonce", "storage", "code"]),
                st.integers(0, 3),  # account index
                st.integers(0, 5),  # slot / value selector
            ),
            max_size=25,
        )
    )
    def test_full_revert_is_identity(self, ops):
        """Any op sequence followed by revert_to(0) leaves state (and its
        committed root) exactly as before."""
        accounts = [Address.from_int(0x40 + i) for i in range(4)]
        base = genesis_snapshot(
            {a: AccountData(balance=1000, storage={1: 7}) for a in accounts}
        )
        db = StateDB(base)
        mark = db.snapshot()
        for kind, ai, v in ops:
            address = accounts[ai]
            if kind == "balance":
                db.set_balance(address, v * 100)
            elif kind == "nonce":
                db.set_nonce(address, v)
            elif kind == "storage":
                db.set_storage(address, v, v * 11)
            else:
                db.set_code(address, bytes([v]))
        db.revert_to(mark)
        assert db.commit().state_root() == base.state_root()
        for a in accounts:
            assert db.get_balance(a) == 1000
            assert db.get_storage(a, 1) == 7
