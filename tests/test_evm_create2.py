"""CREATE2 (EIP-1014) tests: salted, counterfactual contract addresses."""


from repro.common.hashing import keccak
from repro.common.types import Address
from repro.evm.asm import Assembler, asm
from repro.evm.interpreter import contract_address2
from tests.test_evm_interpreter import CONTRACT, run_code, word


def create2_program(salt, out_to_stack=True):
    """Copy tx calldata as initcode, CREATE2 it with ``salt``."""
    a = Assembler()
    a.op("CALLDATASIZE").push(0).push(0).op("CALLDATACOPY")
    a.push(salt)  # salt (deepest)
    a.op("CALLDATASIZE")  # size
    a.push(0)  # offset
    a.push(0)  # value (top)
    a.op("CREATE2")
    if out_to_stack:
        a.push(0).op("MSTORE").push(32).push(0).op("RETURN")
    return a.assemble()


INITCODE = asm([0x01, 0, "MSTORE8", 1, 0, "RETURN"])  # deploys code b"\x01"


class TestCreate2:
    def test_address_matches_eip1014_formula(self):
        result, state = run_code(
            create2_program(salt=42), data=INITCODE, gas=3_000_000
        )
        assert result.success
        created = Address.from_int(word(result))
        assert created == contract_address2(CONTRACT, 42, INITCODE)
        assert state.get_code(created) == b"\x01"

    def test_different_salts_different_addresses(self):
        r1, _ = run_code(create2_program(salt=1), data=INITCODE, gas=3_000_000)
        r2, _ = run_code(create2_program(salt=2), data=INITCODE, gas=3_000_000)
        assert word(r1) != word(r2)
        assert word(r1) != 0 and word(r2) != 0

    def test_same_salt_same_code_deterministic(self):
        r1, _ = run_code(create2_program(salt=7), data=INITCODE, gas=3_000_000)
        r2, _ = run_code(create2_program(salt=7), data=INITCODE, gas=3_000_000)
        assert word(r1) == word(r2)

    def test_redeploy_at_same_address_fails(self):
        # deploy twice with the same salt in one transaction: the second
        # CREATE2 collides and pushes 0
        a = Assembler()
        a.op("CALLDATASIZE").push(0).push(0).op("CALLDATACOPY")
        for _ in range(2):
            a.push(9)
            a.op("CALLDATASIZE")
            a.push(0)
            a.push(0)
            a.op("CREATE2")
        # stack: [addr2, addr1]; return addr2 (top)
        a.push(0).op("MSTORE").push(32).push(0).op("RETURN")
        result, _ = run_code(a.assemble(), data=INITCODE, gas=5_000_000)
        assert result.success
        assert word(result) == 0  # collision

    def test_formula_independent_of_nonce(self):
        """CREATE2 addressing ignores the creator's nonce entirely."""
        a = contract_address2(CONTRACT, 5, INITCODE)
        b = contract_address2(CONTRACT, 5, INITCODE)
        assert a == b
        assert a == Address(
            keccak(
                b"\xff"
                + bytes(CONTRACT)
                + (5).to_bytes(32, "big")
                + keccak(INITCODE)
            )[12:]
        )

    def test_create2_in_static_context_blocked(self):
        from repro.evm.asm import asm as _asm
        from repro.state.account import AccountData
        from tests.test_evm_interpreter import OTHER

        creator = create2_program(salt=1, out_to_stack=False) + bytes([0x00])
        program = _asm(
            [32, 0, 0, 0, OTHER.to_int(), 500_000, "STATICCALL"]
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, _ = run_code(
            program, extra={OTHER: AccountData(code=creator)}, gas=2_000_000
        )
        assert result.success
        assert word(result) == 0  # inner CREATE2 hit write protection
