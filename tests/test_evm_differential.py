"""Differential testing: random operands through real bytecode vs a Python
reference model of the yellow-paper semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import (
    MAX_U256,
    u256_to_signed,
    signed_to_u256,
)
from tests.test_evm_interpreter import returns_top_of_stack, run_code, word

u256 = st.integers(min_value=0, max_value=MAX_U256)

M = 1 << 256


def _sdiv(a, b):
    sa, sb = u256_to_signed(a), u256_to_signed(b)
    if sb == 0:
        return 0
    q = abs(sa) // abs(sb)
    return signed_to_u256(-q if (sa < 0) != (sb < 0) else q)


def _smod(a, b):
    sa, sb = u256_to_signed(a), u256_to_signed(b)
    if sb == 0:
        return 0
    r = abs(sa) % abs(sb)
    return signed_to_u256(-r if sa < 0 else r)


#: (mnemonic, reference function on (a=top, b=next))
BINARY_REFERENCE = {
    "ADD": lambda a, b: (a + b) % M,
    "MUL": lambda a, b: (a * b) % M,
    "SUB": lambda a, b: (a - b) % M,
    "DIV": lambda a, b: 0 if b == 0 else a // b,
    "MOD": lambda a, b: 0 if b == 0 else a % b,
    "SDIV": _sdiv,
    "SMOD": _smod,
    "LT": lambda a, b: int(a < b),
    "GT": lambda a, b: int(a > b),
    "SLT": lambda a, b: int(u256_to_signed(a) < u256_to_signed(b)),
    "SGT": lambda a, b: int(u256_to_signed(a) > u256_to_signed(b)),
    "EQ": lambda a, b: int(a == b),
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "SHL": lambda shift, value: (value << shift) % M if shift < 256 else 0,
    "SHR": lambda shift, value: value >> shift if shift < 256 else 0,
}


class TestBinaryOpsDifferential:
    @settings(max_examples=120, deadline=None)
    @given(
        st.sampled_from(sorted(BINARY_REFERENCE)),
        u256,
        u256,
    )
    def test_matches_reference(self, mnemonic, a, b):
        """Execute `PUSH b, PUSH a, OP` through the interpreter and compare
        with the Python reference (a ends on top of the stack)."""
        program = returns_top_of_stack([b, a, mnemonic])
        result, _ = run_code(program)
        assert result.success, result.error
        expected = BINARY_REFERENCE[mnemonic](a, b)
        assert word(result) == expected, mnemonic

    @settings(max_examples=60, deadline=None)
    @given(u256, u256, st.integers(0, MAX_U256))
    def test_addmod_mulmod(self, a, b, n):
        r_add, _ = run_code(returns_top_of_stack([n, b, a, "ADDMOD"]))
        r_mul, _ = run_code(returns_top_of_stack([n, b, a, "MULMOD"]))
        assert word(r_add) == (0 if n == 0 else (a + b) % n)
        assert word(r_mul) == (0 if n == 0 else (a * b) % n)

    @settings(max_examples=40, deadline=None)
    @given(u256, st.integers(0, 300))
    def test_exp(self, base, exponent):
        result, _ = run_code(returns_top_of_stack([exponent, base, "EXP"]))
        assert word(result) == pow(base, exponent, M)

    @settings(max_examples=60, deadline=None)
    @given(u256)
    def test_not_iszero(self, a):
        r_not, _ = run_code(returns_top_of_stack([a, "NOT"]))
        r_isz, _ = run_code(returns_top_of_stack([a, "ISZERO"]))
        assert word(r_not) == a ^ MAX_U256
        assert word(r_isz) == int(a == 0)

    @settings(max_examples=60, deadline=None)
    @given(u256, st.integers(0, 40))
    def test_byte(self, value, index):
        result, _ = run_code(returns_top_of_stack([value, index, "BYTE"]))
        if index < 32:
            expected = (value >> (8 * (31 - index))) & 0xFF
        else:
            expected = 0
        assert word(result) == expected

    @settings(max_examples=60, deadline=None)
    @given(u256, st.integers(0, 40))
    def test_signextend(self, value, b):
        result, _ = run_code(returns_top_of_stack([value, b, "SIGNEXTEND"]))
        if b >= 31:
            expected = value
        else:
            bits = 8 * (b + 1)
            truncated = value & ((1 << bits) - 1)
            if truncated & (1 << (bits - 1)):
                expected = truncated | (MAX_U256 ^ ((1 << bits) - 1))
            else:
                expected = truncated
        assert word(result) == expected

    @settings(max_examples=40, deadline=None)
    @given(u256, st.integers(0, 300))
    def test_sar(self, value, shift):
        result, _ = run_code(returns_top_of_stack([value, shift, "SAR"]))
        signed = u256_to_signed(value)
        if shift >= 256:
            expected = 0 if signed >= 0 else MAX_U256
        else:
            expected = signed_to_u256(signed >> shift)
        assert word(result) == expected


class TestMemoryDifferential:
    @settings(max_examples=50, deadline=None)
    @given(u256, st.integers(0, 200))
    def test_mstore_mload_round_trip(self, value, offset):
        program = returns_top_of_stack(
            [value, offset, "MSTORE", offset, "MLOAD"]
        )
        result, _ = run_code(program)
        assert word(result) == value

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 100))
    def test_mstore8_writes_one_byte(self, byte, offset):
        # write the byte, read the 32-byte word starting at that offset
        program = returns_top_of_stack(
            [byte, offset, "MSTORE8", offset, "MLOAD"]
        )
        result, _ = run_code(program)
        assert word(result) >> 248 == byte
