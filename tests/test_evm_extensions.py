"""Tests for the extended opcodes (SIGNEXTEND, EXTCODE*, BLOCKHASH) and
the disassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import hash_of
from repro.common.types import Address
from repro.evm.asm import asm
from repro.evm.disasm import disassemble, format_disassembly, reassembles_identically
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.account import AccountData
from repro.txpool.transaction import Transaction
from tests.test_evm_interpreter import (
    CONTRACT,
    OTHER,
    SENDER,
    make_state,
    returns_top_of_stack,
    run_code,
    word,
)


class TestSignExtend:
    @pytest.mark.parametrize(
        "b,x,expected",
        [
            (0, 0xFF, (1 << 256) - 1),  # sign-extend byte 0: 0xff -> -1
            (0, 0x7F, 0x7F),
            (1, 0x80FF, 0x80FF),  # bit 15 is 1? 0x80ff bit15=1 -> extend
            (31, 0x1234, 0x1234),  # b >= 31: unchanged
            (100, 0x1234, 0x1234),
        ],
    )
    def test_cases(self, b, x, expected):
        if (b, x) == (1, 0x80FF):
            expected = ((1 << 256) - 1) ^ 0xFFFF | 0x80FF
        result, _ = run_code(returns_top_of_stack([x, b, "SIGNEXTEND"]))
        assert result.success
        assert word(result) == expected

    @given(st.integers(0, 255))
    def test_byte0_matches_int8_semantics(self, value):
        result, _ = run_code(returns_top_of_stack([value, 0, "SIGNEXTEND"]))
        signed = value - 256 if value >= 128 else value
        assert word(result) == signed % (1 << 256)


class TestExtCode:
    def test_extcodesize(self):
        extra = {OTHER: AccountData(code=b"\x01\x02\x03")}
        result, _ = run_code(
            returns_top_of_stack([OTHER.to_int(), "EXTCODESIZE"]), extra=extra
        )
        assert word(result) == 3

    def test_extcodesize_empty_account(self):
        result, _ = run_code(
            returns_top_of_stack([Address.from_int(0x1234).to_int(), "EXTCODESIZE"])
        )
        assert word(result) == 0

    def test_extcodecopy(self):
        extra = {OTHER: AccountData(code=bytes(range(1, 33)))}
        # copy other's code[0:32] to mem[0], return it
        program = asm(
            [32, 0, 0, OTHER.to_int(), "EXTCODECOPY", 32, 0, "RETURN"]
        )
        result, _ = run_code(program, extra=extra)
        assert result.success
        assert result.output == bytes(range(1, 33))

    def test_extcodecopy_pads_with_zeros(self):
        extra = {OTHER: AccountData(code=b"\xaa")}
        program = asm([4, 0, 0, OTHER.to_int(), "EXTCODECOPY", 4, 0, "RETURN"])
        result, _ = run_code(program, extra=extra)
        assert result.output == b"\xaa\x00\x00\x00"


class TestBlockhash:
    def run_with_hashes(self, program, number, hashes):
        state = make_state(program)
        tx = Transaction(SENDER, CONTRACT, 0, b"", 200_000, 0, 0)
        ctx = ExecutionContext(
            block_number=number,
            recent_block_hashes=tuple((n, bytes(h)) for n, h in hashes),
        )
        return EVM().apply_transaction(state, tx, ctx)

    def test_known_ancestor(self):
        h = hash_of(b"block-9")
        result = self.run_with_hashes(
            returns_top_of_stack([9, "BLOCKHASH"]), 10, [(9, h)]
        )
        assert word(result) == int.from_bytes(h, "big")

    def test_future_block_is_zero(self):
        result = self.run_with_hashes(
            returns_top_of_stack([10, "BLOCKHASH"]), 10, []
        )
        assert word(result) == 0

    def test_too_old_is_zero(self):
        h = hash_of(b"old")
        result = self.run_with_hashes(
            returns_top_of_stack([1, "BLOCKHASH"]), 400, [(1, h)]
        )
        assert word(result) == 0

    def test_unknown_recent_is_zero(self):
        result = self.run_with_hashes(
            returns_top_of_stack([9, "BLOCKHASH"]), 10, []
        )
        assert word(result) == 0


class TestDisassembler:
    def test_simple_listing(self):
        code = asm([1, 2, "ADD", "STOP"])
        instructions = disassemble(code)
        assert [i.render() for i in instructions] == [
            "PUSH1 0x01",
            "PUSH1 0x02",
            "ADD",
            "STOP",
        ]
        assert [i.pc for i in instructions] == [0, 2, 4, 5]

    def test_invalid_bytes_rendered(self):
        instructions = disassemble(b"\xef\x01")
        assert instructions[0].name == "INVALID(0xef)"
        assert instructions[1].name == "ADD"

    def test_truncated_push_immediate(self):
        # PUSH4 with only 2 bytes of immediate left
        instructions = disassemble(bytes([0x63, 0xAA, 0xBB]))
        assert instructions[0].immediate == b"\xaa\xbb"

    def test_format_marks_jumpdests(self):
        code = asm([("jump", "end"), (":", "end")])
        listing = format_disassembly(code)
        assert ">" in listing
        assert "JUMPDEST" in listing

    def test_empty_code(self):
        assert disassemble(b"") == []
        assert format_disassembly(b"") == ""

    def test_workload_contracts_disassemble_cleanly(self):
        from repro.workload.contracts import airdrop_code, erc20_code, nft_code

        for code in (erc20_code(), nft_code(), airdrop_code()):
            instructions = disassemble(code)
            assert not any(i.name.startswith("INVALID") for i in instructions)
            assert reassembles_identically(code)

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=200))
    def test_reassembly_identity_on_arbitrary_bytes(self, code):
        assert reassembles_identically(code)
