"""Fine-grained gas accounting tests: exact charges per operation."""


from repro.evm.asm import asm
from repro.evm.gas import DEFAULT_GAS_SCHEDULE as G
from tests.test_evm_interpreter import run_code


def gas_of(program, storage=None, data=b""):
    result, _ = run_code(asm(program), storage=storage, data=data)
    assert result.success, result.error
    return result.gas_used - 21000 - sum(
        G.tx_data_nonzero if b else G.tx_data_zero for b in data
    )


class TestExactCharges:
    def test_add(self):
        assert gas_of([1, 2, "ADD"]) == 3 + 3 + 3  # two pushes + ADD

    def test_sload(self):
        assert gas_of([5, "SLOAD"]) == 3 + 800

    def test_sstore_fresh(self):
        assert gas_of([1, 5, "SSTORE"]) == 3 + 3 + 20000

    def test_sstore_reset(self):
        assert gas_of([2, 5, "SSTORE"], storage={5: 1}) == 3 + 3 + 5000

    def test_sstore_noop(self):
        assert gas_of([1, 5, "SSTORE"], storage={5: 1}) == 3 + 3 + 800

    def test_sha3_one_word(self):
        # PUSH 32, PUSH 0, SHA3 over fresh memory word
        cost = gas_of([32, 0, "SHA3"])
        assert cost == 3 + 3 + 30 + G.sha3_word + G.memory_cost(1)

    def test_mstore_expansion(self):
        base = gas_of([1, 0, "MSTORE"])
        far = gas_of([1, 320, "MSTORE"])  # ends at byte 352 = 11 words
        assert base == 3 + 3 + 3 + G.memory_cost(1)
        # PUSH widths don't change gas (always 3), so the delta is purely
        # the quadratic memory expansion
        assert far - base == G.memory_cost(11) - G.memory_cost(1)

    def test_exp_dynamic(self):
        small = gas_of([1, 2, "EXP"])  # exponent 1: one byte
        large = gas_of([1 << 16, 2, "EXP"])  # exponent 3 bytes
        # PUSH1 and PUSH3 both cost 3 gas, so the delta is exactly the two
        # extra exponent bytes
        assert large - small == 2 * G.exp_byte

    def test_log_data_cost(self):
        empty = gas_of([0, 0, "LOG0"])
        with_data = gas_of([32, 0, "LOG0"])
        assert with_data - empty == 32 * G.log_data_byte + G.memory_cost(1)

    def test_calldata_intrinsic_split(self):
        """Zero bytes cost 4, nonzero 16 (yellow paper G_txdatazero/nonzero)."""
        result_zero, _ = run_code(asm(["STOP"]), data=b"\x00" * 10)
        result_nonzero, _ = run_code(asm(["STOP"]), data=b"\x01" * 10)
        assert result_nonzero.gas_used - result_zero.gas_used == 10 * (16 - 4)


class TestGasIntrospection:
    def test_gas_opcode_reports_remaining(self):
        from tests.test_evm_interpreter import returns_top_of_stack, word

        result, _ = run_code(returns_top_of_stack(["GAS"]), gas=100_000)
        remaining = word(result)
        # after intrinsic 21000 and the GAS opcode's own 2 gas
        assert remaining == 100_000 - 21000 - 2

    def test_unused_gas_refunded_exactly(self):
        result, _ = run_code(asm([1, 2, "ADD", "STOP"]), gas=500_000)
        assert result.gas_used == 21000 + 9
