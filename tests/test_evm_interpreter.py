"""Interpreter semantics: opcodes, control flow, failure modes, calls."""

import pytest

from repro.common.hashing import keccak
from repro.common.types import Address
from repro.evm.asm import Assembler, asm
from repro.evm.interpreter import EVM, EVMConfig, ExecutionContext, InvalidTransaction
from repro.evm.interpreter import contract_address
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.transaction import Transaction

SENDER = Address.from_int(0xAAAA)
CONTRACT = Address.from_int(0xCCCC)
OTHER = Address.from_int(0xDDDD)
ETHER = 10**18


def make_state(code=b"", storage=None, extra=None):
    alloc = {
        SENDER: AccountData(balance=1000 * ETHER),
        CONTRACT: AccountData(code=code, storage=storage or {}),
    }
    if extra:
        alloc.update(extra)
    return StateDB(genesis_snapshot(alloc))


def run_code(code, data=b"", value=0, gas=2_000_000, storage=None, extra=None, nonce=0):
    state = make_state(code, storage, extra)
    tx = Transaction(
        sender=SENDER,
        to=CONTRACT,
        value=value,
        data=data,
        gas_limit=gas,
        gas_price=0,
        nonce=nonce,
    )
    result = EVM().apply_transaction(state, tx, ExecutionContext())
    return result, state


def returns_top_of_stack(program):
    """Wrap a program so its stack top is returned as a 32-byte word."""
    return asm(list(program) + [0, "MSTORE", 32, 0, "RETURN"])


def word(result):
    return int.from_bytes(result.output, "big")


class TestArithmetic:
    @pytest.mark.parametrize(
        "program,expected",
        [
            ([3, 4, "ADD"], 7),
            ([3, 4, "MUL"], 12),
            ([3, 10, "SUB"], 7),  # top - next = 10 - 3
            ([3, 12, "DIV"], 4),
            ([0, 12, "DIV"], 0),  # div by zero -> 0
            ([5, 17, "MOD"], 2),
            ([0, 17, "MOD"], 0),
            ([7, 3, 5, "ADDMOD"], 1),  # (5 + 3) % 7
            ([7, 3, 5, "MULMOD"], 1),  # (5 * 3) % 7
            ([3, 2, "EXP"], 8),  # 2 ** 3
            ([5, 9, "LT"], 0),  # 9 < 5
            ([9, 5, "LT"], 1),
            ([5, 9, "GT"], 1),
            ([9, 9, "EQ"], 1),
            ([0, "ISZERO"], 1),
            ([5, "ISZERO"], 0),
            ([0b1100, 0b1010, "AND"], 0b1000),
            ([0b1100, 0b1010, "OR"], 0b1110),
            ([0b1100, 0b1010, "XOR"], 0b0110),
            ([1, 4, "SHL"], 16),  # value=1, shift=4 on top
            ([16, 4, "SHR"], 1),
            ([0xFF, 31, "BYTE"], 0xFF),  # index on top; 31 = lowest byte
            ([0xFF, 0, "BYTE"], 0),
        ],
    )
    def test_binary_ops(self, program, expected):
        result, _ = run_code(returns_top_of_stack(program))
        assert result.success, result.error
        assert word(result) == expected

    def test_not(self):
        result, _ = run_code(returns_top_of_stack([0, "NOT"]))
        assert word(result) == (1 << 256) - 1

    def test_signed_division(self):
        # -8 / 2 == -4 (two's complement)
        minus8 = (1 << 256) - 8
        result, _ = run_code(returns_top_of_stack([2, minus8, "SDIV"]))
        assert word(result) == (1 << 256) - 4

    def test_signed_comparison(self):
        minus1 = (1 << 256) - 1
        result, _ = run_code(returns_top_of_stack([1, minus1, "SLT"]))
        assert word(result) == 1  # -1 < 1


class TestControlFlow:
    def test_jump_skips_code(self):
        program = asm(
            [("jump", "end"), 99, 0, "MSTORE", (":", "end"), 42]
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, _ = run_code(program)
        assert result.success
        assert word(result) == 42

    def test_jumpi_taken(self):
        # JUMPI pops dest then cond: push cond first, dest last
        program = asm(
            [1, ("@", "yes"), "JUMPI", 0, "STOP", (":", "yes"), 7]
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, _ = run_code(program)
        assert result.success
        assert word(result) == 7

    def test_jumpi_not_taken(self):
        program = asm(
            [0, ("@", "yes"), "JUMPI", 5]
            + [0, "MSTORE", 32, 0, "RETURN"]
            + [(":", "yes"), "STOP"]
        )
        result, _ = run_code(program)
        assert result.success
        assert word(result) == 5

    def test_invalid_jump_fails(self):
        result, _ = run_code(asm([3, "JUMP", "STOP"]))
        assert not result.success
        assert "jump" in result.error

    def test_jump_into_push_data_fails(self):
        # 0x5B inside PUSH immediate is not a valid JUMPDEST
        code = bytes([0x60, 0x5B, 0x60, 0x01, 0x56])  # PUSH1 0x5b PUSH1 1 JUMP
        result, _ = run_code(code)
        assert not result.success

    def test_invalid_opcode_fails(self):
        result, _ = run_code(b"\xef")
        assert not result.success
        assert "invalid opcode" in result.error

    def test_implicit_stop_at_code_end(self):
        result, _ = run_code(asm([1, 2, "ADD"]))
        assert result.success
        assert result.output == b""

    def test_pc_opcode(self):
        result, _ = run_code(returns_top_of_stack(["PC"]))
        assert word(result) == 0

    def test_stack_underflow_fails(self):
        result, _ = run_code(asm(["POP"]))
        assert not result.success


class TestEnvironment:
    def test_caller_and_address(self):
        result, _ = run_code(returns_top_of_stack(["CALLER"]))
        assert word(result) == SENDER.to_int()
        result, _ = run_code(returns_top_of_stack(["ADDRESS"]))
        assert word(result) == CONTRACT.to_int()

    def test_callvalue(self):
        result, _ = run_code(returns_top_of_stack(["CALLVALUE"]), value=123)
        assert word(result) == 123

    def test_calldata(self):
        data = (0x42).to_bytes(32, "big")
        result, _ = run_code(returns_top_of_stack([0, "CALLDATALOAD"]), data=data)
        assert word(result) == 0x42
        result, _ = run_code(returns_top_of_stack(["CALLDATASIZE"]), data=data)
        assert word(result) == 32

    def test_calldata_out_of_range_zero_padded(self):
        result, _ = run_code(returns_top_of_stack([100, "CALLDATALOAD"]), data=b"\x01")
        assert word(result) == 0

    def test_block_context(self):
        state = make_state(returns_top_of_stack(["NUMBER"]))
        tx = Transaction(SENDER, CONTRACT, 0, b"", 100_000, 0, 0)
        ctx = ExecutionContext(block_number=77, timestamp=123456)
        result = EVM().apply_transaction(state, tx, ctx)
        assert word(result) == 77

    def test_balance_opcode(self):
        program = returns_top_of_stack([CONTRACT.to_int(), "BALANCE"])
        result, _ = run_code(program, value=55)
        assert word(result) == 55  # value arrived before execution

    def test_selfbalance(self):
        result, _ = run_code(returns_top_of_stack(["SELFBALANCE"]), value=7)
        assert word(result) == 7

    def test_sha3_matches_keccak(self):
        # store 32-byte word 1 at mem[0], hash it
        program = returns_top_of_stack([1, 0, "MSTORE", 32, 0, "SHA3"])
        result, _ = run_code(program)
        assert word(result) == int.from_bytes(keccak((1).to_bytes(32, "big")), "big")


class TestStorage:
    def test_sstore_persists(self):
        result, state = run_code(asm([99, 5, "SSTORE", "STOP"]))
        assert result.success
        assert state.get_storage(CONTRACT, 5) == 99

    def test_sload_reads_genesis_storage(self):
        result, _ = run_code(
            returns_top_of_stack([7, "SLOAD"]), storage={7: 1234}
        )
        assert word(result) == 1234

    def test_revert_rolls_back_storage(self):
        program = asm([99, 5, "SSTORE", 0, 0, "REVERT"])
        result, state = run_code(program, storage={5: 1})
        assert not result.success
        assert result.error == "revert"
        assert state.get_storage(CONTRACT, 5) == 1

    def test_revert_returns_data(self):
        # mstore a marker, revert with it
        program = asm([0xAB, 0, "MSTORE", 32, 0, "REVERT"])
        result, _ = run_code(program)
        assert not result.success
        assert int.from_bytes(result.output, "big") == 0xAB

    def test_out_of_gas_rolls_back_and_consumes_all(self):
        program = asm([99, 5, "SSTORE", 99, 6, "SSTORE", "STOP"])
        # enough intrinsic+first sstore, not the second
        gas = 21000 + 3 * 6 + 20000 + 2000
        result, state = run_code(program, gas=gas)
        assert not result.success
        assert state.get_storage(CONTRACT, 5) == 0
        assert result.gas_used == gas  # everything consumed

    def test_sstore_gas_noop_cheap(self):
        noop = asm([1, 5, "SSTORE", "STOP"])
        write = asm([2, 5, "SSTORE", "STOP"])
        r_noop, _ = run_code(noop, storage={5: 1})
        r_write, _ = run_code(write, storage={5: 1})
        assert r_noop.gas_used < r_write.gas_used


class TestLogs:
    def test_log_collected(self):
        program = asm([0xAA, 0, "MSTORE", 0x1234, 32, 0, "LOG1", "STOP"])
        result, _ = run_code(program)
        assert result.success
        assert len(result.logs) == 1
        log = result.logs[0]
        assert log.address == CONTRACT
        assert log.topics == (0x1234,)
        assert int.from_bytes(log.data, "big") == 0xAA

    def test_logs_dropped_on_revert(self):
        program = asm([0, 0, "LOG0", 0, 0, "REVERT"])
        result, _ = run_code(program)
        assert not result.success
        assert result.logs == []

    def test_trace_counts_log(self):
        program = asm([0, 0, "LOG0", "STOP"])
        result, _ = run_code(program)
        assert result.trace.counts.get("log") == 1


class TestCalls:
    def make_callee(self, program):
        return {OTHER: AccountData(code=asm(program))}

    def call_program(self, callee_gas=100_000, value=0, out_size=32):
        """CALL OTHER with no calldata, copy out_size bytes of returndata."""
        return [
            out_size, 0, 0, 0, value, OTHER.to_int(), callee_gas, "CALL",
        ]

    def test_call_executes_callee(self):
        callee = self.make_callee([42, 0, "MSTORE", 32, 0, "RETURN"])
        program = asm(
            self.call_program() + ["POP", 32, 0, "RETURN"]
        )
        result, _ = run_code(program, extra=callee)
        assert result.success
        assert word(result) == 42

    def test_call_value_transfer(self):
        callee = self.make_callee(["STOP"])
        program = asm(self.call_program(value=500) + ["STOP"])
        result, state = run_code(program, value=500, extra=callee)
        assert result.success
        assert state.get_balance(OTHER) == 500
        assert state.get_balance(CONTRACT) == 0

    def test_call_failure_pushes_zero_and_reverts_callee(self):
        callee = self.make_callee([1, 5, "SSTORE", 0, 0, "REVERT"])
        program = asm(
            self.call_program(out_size=0)
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, state = run_code(program, extra=callee)
        assert result.success  # caller continues
        assert word(result) == 0  # CALL pushed failure
        assert state.get_storage(OTHER, 5) == 0

    def test_callee_cannot_corrupt_caller_on_failure(self):
        # caller writes storage, callee fails; caller's write survives
        callee = self.make_callee(["POP"])  # stack underflow -> failure
        program = asm(
            [7, 1, "SSTORE"] + self.call_program(out_size=0) + ["POP", "STOP"]
        )
        result, state = run_code(program, extra=callee)
        assert result.success
        assert state.get_storage(CONTRACT, 1) == 7

    def test_staticcall_blocks_writes(self):
        callee = self.make_callee([1, 5, "SSTORE", "STOP"])
        program = asm(
            [32, 0, 0, 0, OTHER.to_int(), 100_000, "STATICCALL"]
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, state = run_code(program, extra=callee)
        assert result.success
        assert word(result) == 0  # callee failed on write protection
        assert state.get_storage(OTHER, 5) == 0

    def test_returndatasize_and_copy(self):
        callee = self.make_callee([0xBEEF, 0, "MSTORE", 32, 0, "RETURN"])
        program = asm(
            self.call_program(out_size=0)
            + ["POP", "RETURNDATASIZE"]
            + [0, "MSTORE", 32, 0, "RETURN"]
        )
        result, _ = run_code(program, extra=callee)
        assert word(result) == 32

    def test_call_depth_limit(self):
        # self-recursive contract: CALL itself forever
        a = Assembler()
        a.push(0).push(0).push(0).push(0).push(0)
        a.push(CONTRACT.to_int()).push(500_000).op("CALL").op("POP").op("STOP")
        result, _ = run_code(a.assemble(), gas=10_000_000)
        # recursion terminates via depth limit / 63/64 rule without crashing
        assert result.success

    def test_trace_counts_call(self):
        callee = self.make_callee(["STOP"])
        program = asm(self.call_program(out_size=0) + ["POP", "STOP"])
        result, _ = run_code(program, extra=callee)
        assert result.trace.counts.get("call") == 1


class TestCreate:
    def test_create_deploys_code(self):
        # initcode returns 2 bytes of runtime code: STOP STOP
        # build initcode: PUSH2 0x0000(code) ... simplest: mstore8 twice, return 2 bytes
        initcode = asm([0x00, 0, "MSTORE8", 0x00, 1, "MSTORE8", 2, 0, "RETURN"])
        a = Assembler()
        # store initcode in memory via CODECOPY of a trailing data blob is
        # overkill: use CALLDATACOPY instead, initcode passed as tx data
        # CALLDATACOPY pops dst, src, size — push size first, dst last
        a.op("CALLDATASIZE").push(0).push(0).op("CALLDATACOPY")
        a.op("CALLDATASIZE").push(0).push(0).op("CREATE")
        a.push(0).op("MSTORE").push(32).push(0).op("RETURN")
        result, state = run_code(a.assemble(), data=initcode, gas=3_000_000)
        assert result.success
        created = Address.from_int(word(result))
        assert created != Address.from_int(0)
        assert state.get_code(created) == b"\x00\x00"

    def test_top_level_create_transaction(self):
        initcode = asm([0x01, 0, "MSTORE8", 1, 0, "RETURN"])
        state = make_state()
        tx = Transaction(SENDER, None, 0, initcode, 3_000_000, 0, 0)
        result = EVM().apply_transaction(state, tx, ExecutionContext())
        assert result.success
        assert result.created == contract_address(SENDER, 0)
        assert state.get_code(result.created) == b"\x01"

    def test_create_address_derivation_deterministic(self):
        assert contract_address(SENDER, 0) == contract_address(SENDER, 0)
        assert contract_address(SENDER, 0) != contract_address(SENDER, 1)


class TestApplyTransaction:
    def test_plain_transfer(self):
        state = make_state()
        tx = Transaction(SENDER, OTHER, 1000, b"", 21000, 1, 0)
        result = EVM().apply_transaction(state, tx, ExecutionContext())
        assert result.success
        assert state.get_balance(OTHER) == 1000
        assert result.gas_used == 21000
        assert result.fee == 21000

    def test_nonce_mismatch_rejected(self):
        state = make_state()
        tx = Transaction(SENDER, OTHER, 0, b"", 21000, 0, 5)
        with pytest.raises(InvalidTransaction):
            EVM().apply_transaction(state, tx, ExecutionContext())

    def test_insufficient_funds_rejected(self):
        state = make_state()
        tx = Transaction(SENDER, OTHER, 2000 * ETHER, b"", 21000, 0, 0)
        with pytest.raises(InvalidTransaction):
            EVM().apply_transaction(state, tx, ExecutionContext())

    def test_intrinsic_gas_over_limit_rejected(self):
        state = make_state()
        tx = Transaction(SENDER, OTHER, 0, b"\x01" * 100, 21000, 0, 0)
        with pytest.raises(InvalidTransaction):
            EVM().apply_transaction(state, tx, ExecutionContext())

    def test_nonce_incremented_even_on_revert(self):
        program = asm([0, 0, "REVERT"])
        result, state = run_code(program)
        assert not result.success
        assert state.get_nonce(SENDER) == 1

    def test_fee_charged_and_refunded(self):
        state = make_state()
        before = state.get_balance(SENDER)
        tx = Transaction(SENDER, OTHER, 0, b"", 100_000, 3, 0)
        result = EVM().apply_transaction(state, tx, ExecutionContext())
        # only 21000 used; rest refunded
        assert state.get_balance(SENDER) == before - 21000 * 3
        assert result.fee == 21000 * 3

    def test_deferred_coinbase_not_credited_inline(self):
        state = make_state()
        coinbase = Address.from_int(0xFEE)
        ctx = ExecutionContext(coinbase=coinbase)
        tx = Transaction(SENDER, OTHER, 0, b"", 21000, 2, 0)
        EVM().apply_transaction(state, tx, ctx)
        assert state.get_balance(coinbase) == 0  # deferred (default config)

    def test_inline_coinbase_credit_when_not_deferred(self):
        state = make_state()
        coinbase = Address.from_int(0xFEE)
        ctx = ExecutionContext(coinbase=coinbase)
        evm = EVM(EVMConfig(defer_coinbase=False))
        tx = Transaction(SENDER, OTHER, 0, b"", 21000, 2, 0)
        evm.apply_transaction(state, tx, ctx)
        assert state.get_balance(coinbase) == 42000

    def test_failed_tx_still_pays_fee(self):
        state = make_state(asm([0, 0, "REVERT"]))
        before = state.get_balance(SENDER)
        tx = Transaction(SENDER, CONTRACT, 0, b"", 100_000, 5, 0)
        result = EVM().apply_transaction(state, tx, ExecutionContext())
        assert not result.success
        assert state.get_balance(SENDER) == before - result.gas_used * 5
