"""SSTORE clearing-refund tests (journaled across call frames)."""


from repro.evm.asm import asm
from repro.evm.gas import DEFAULT_GAS_SCHEDULE as G
from repro.state.account import AccountData
from tests.test_evm_interpreter import OTHER, run_code


class TestRefunds:
    def test_clearing_slot_refunds(self):
        # slot 5 starts at 1; writing 0 clears it
        clear = asm([0, 5, "SSTORE", "STOP"])
        keep = asm([2, 5, "SSTORE", "STOP"])
        r_clear, _ = run_code(clear, storage={5: 1})
        r_keep, _ = run_code(keep, storage={5: 1})
        # both pay sstore_reset, but the clear gets a refund (capped at half)
        assert r_clear.gas_used < r_keep.gas_used

    def test_refund_capped_at_half_gas_used(self):
        # one cheap clear: the 15000 refund exceeds half the consumed gas,
        # so only half comes back
        clear = asm([0, 5, "SSTORE", "STOP"])
        result, _ = run_code(clear, storage={5: 1})
        pre_refund = 21000 + 3 + 3 + G.sstore_reset
        assert result.gas_used == pre_refund - pre_refund // 2

    def test_multiple_clears_accumulate(self):
        two_clears = asm([0, 5, "SSTORE", 0, 6, "SSTORE", "STOP"])
        one_clear = asm([0, 5, "SSTORE", 2, 6, "SSTORE", "STOP"])
        r_two, _ = run_code(two_clears, storage={5: 1, 6: 1})
        r_one, _ = run_code(one_clear, storage={5: 1, 6: 1})
        assert r_two.gas_used < r_one.gas_used

    def test_reverted_frame_refund_discarded(self):
        # clear a slot, then revert: no refund survives
        program = asm([0, 5, "SSTORE", 0, 0, "REVERT"])
        result, state = run_code(program, storage={5: 1}, gas=100_000)
        assert not result.success
        assert state.get_storage(
            __import__("tests.test_evm_interpreter", fromlist=["CONTRACT"]).CONTRACT, 5
        ) == 1
        # gas consumed without any refund: full 21000 + pushes + sstore
        assert result.gas_used == 21000 + 3 + 3 + G.sstore_reset + 3 + 3

    def test_failed_child_call_refund_discarded(self):
        """A child that clears a slot and then fails must not leak its
        refund into the parent's ledger."""
        callee_clear_then_fail = asm([0, 5, "SSTORE", "POP"])  # POP underflows
        callee_clear_ok = asm([0, 5, "SSTORE", "STOP"])
        caller = asm(
            [0, 0, 0, 0, 0, OTHER.to_int(), 100_000, "CALL", "POP", "STOP"]
        )
        r_fail, _ = run_code(
            caller,
            extra={OTHER: AccountData(code=callee_clear_then_fail, storage={5: 1})},
            gas=300_000,
        )
        r_ok, _ = run_code(
            caller,
            extra={OTHER: AccountData(code=callee_clear_ok, storage={5: 1})},
            gas=300_000,
        )
        assert r_fail.success and r_ok.success  # caller survives either way
        # the successful clear earns a refund; the failed one does not, and
        # the failed child also burns its forwarded gas
        assert r_ok.gas_used < r_fail.gas_used

    def test_erc20_transfer_emptying_balance_gets_refund(self, small_universe):
        """Economic effect in the real workload: sending your whole token
        balance clears the storage slot and earns a refund."""
        from repro.evm.interpreter import EVM, ExecutionContext
        from repro.state.statedb import StateDB
        from repro.txpool.transaction import Transaction
        from repro.workload.contracts import erc20_balance_slot, erc20_transfer_calldata

        uni = small_universe
        token = uni.tokens[0]
        db = StateDB(uni.genesis)
        sender = next(
            e for e in uni.eoas if db.get_storage(token, erc20_balance_slot(e)) > 0
        )
        balance = db.get_storage(token, erc20_balance_slot(sender))
        receiver = uni.eoas[1]

        full = Transaction(
            sender, token, 0, erc20_transfer_calldata(receiver, balance),
            400_000, 0, 0,
        )
        partial = Transaction(
            sender, token, 0, erc20_transfer_calldata(receiver, balance // 2),
            400_000, 0, 0,
        )
        evm = EVM()
        r_full = evm.apply_transaction(StateDB(uni.genesis), full, ExecutionContext())
        r_partial = evm.apply_transaction(
            StateDB(uni.genesis), partial, ExecutionContext()
        )
        assert r_full.success and r_partial.success
        assert r_full.gas_used < r_partial.gas_used
