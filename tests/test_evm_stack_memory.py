"""Unit tests for the EVM stack and memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import MAX_U256
from repro.evm.memory import MAX_MEMORY_BYTES, Memory
from repro.evm.stack import MAX_DEPTH, Stack, StackError


class TestStack:
    def test_push_pop(self):
        s = Stack()
        s.push(1)
        s.push(2)
        assert s.pop() == 2
        assert s.pop() == 1

    def test_pop_empty_raises(self):
        with pytest.raises(StackError):
            Stack().pop()

    def test_push_masks_wide_values(self):
        s = Stack()
        s.push(1 << 256)
        assert s.pop() == 0
        s.push(-1)
        assert s.pop() == MAX_U256

    def test_overflow(self):
        s = Stack()
        for i in range(MAX_DEPTH):
            s.push(i)
        with pytest.raises(StackError):
            s.push(0)

    def test_pop_n_order(self):
        s = Stack()
        for v in (1, 2, 3):
            s.push(v)
        assert s.pop_n(2) == [3, 2]  # result[0] is top
        assert len(s) == 1

    def test_pop_n_underflow(self):
        s = Stack()
        s.push(1)
        with pytest.raises(StackError):
            s.pop_n(2)

    def test_peek(self):
        s = Stack()
        s.push(10)
        s.push(20)
        assert s.peek(0) == 20
        assert s.peek(1) == 10
        assert len(s) == 2  # non-destructive

    def test_peek_too_deep(self):
        with pytest.raises(StackError):
            Stack().peek(0)

    def test_dup(self):
        s = Stack()
        s.push(7)
        s.push(8)
        s.dup(2)  # duplicate second item
        assert s.pop() == 7
        assert s.pop() == 8

    def test_dup_underflow(self):
        s = Stack()
        s.push(1)
        with pytest.raises(StackError):
            s.dup(2)

    def test_swap(self):
        s = Stack()
        for v in (1, 2, 3):
            s.push(v)
        s.swap(2)  # swap top with third
        assert s.pop() == 1
        assert s.pop() == 2
        assert s.pop() == 3

    def test_swap_underflow(self):
        s = Stack()
        s.push(1)
        with pytest.raises(StackError):
            s.swap(1)

    @given(st.lists(st.integers(min_value=0, max_value=MAX_U256), max_size=40))
    def test_lifo_property(self, values):
        s = Stack()
        for v in values:
            s.push(v)
        out = [s.pop() for _ in values]
        assert out == list(reversed(values))


class TestMemory:
    def test_starts_empty(self):
        assert len(Memory()) == 0

    def test_reads_are_zero_filled(self):
        m = Memory()
        assert m.read(100, 4) == b"\x00" * 4

    def test_write_then_read(self):
        m = Memory()
        m.write(10, b"hello")
        assert m.read(10, 5) == b"hello"

    def test_expansion_rounds_to_words(self):
        m = Memory()
        m.write(0, b"x")
        assert len(m) == 32
        m.write(33, b"y")
        assert len(m) == 64

    def test_word_round_trip(self):
        m = Memory()
        m.write_word(64, 0xDEADBEEF)
        assert m.read_word(64) == 0xDEADBEEF

    def test_write_byte(self):
        m = Memory()
        m.write_byte(5, 0x1FF)  # masked to one byte
        assert m.read(5, 1) == b"\xff"

    def test_touch_zero_size_no_expansion(self):
        m = Memory()
        assert m.touch(10_000, 0) == 0
        assert len(m) == 0

    def test_cap_enforced(self):
        m = Memory()
        with pytest.raises(MemoryError):
            m.touch(MAX_MEMORY_BYTES, 1)

    def test_negative_access_rejected(self):
        with pytest.raises(ValueError):
            Memory().touch(-1, 4)

    def test_words_property(self):
        m = Memory()
        m.write(0, b"\x01" * 40)
        assert m.words == 2
