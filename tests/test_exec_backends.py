"""Unit tests for the real-parallelism backend layer (repro.exec)."""

import pytest

from repro.__main__ import build_parser
from repro.common.types import Address
from repro.exec import (
    BACKEND_CHOICES,
    FootprintMiss,
    GuardedSnapshot,
    ProcessBackend,
    SerialBackend,
    SliceSnapshot,
    ThreadBackend,
    get_backend,
)
from repro.exec.tasks import build_state_slice


def _double(shared, payload):
    """Module-level so the process pool can pickle it by reference."""
    return (shared, payload * 2)


class TestFactory:
    def test_sim_and_none_select_the_simulator(self):
        assert get_backend(None) is None
        assert get_backend("sim") is None

    @pytest.mark.parametrize(
        "name, cls",
        [("serial", SerialBackend), ("thread", ThreadBackend), ("process", ProcessBackend)],
    )
    def test_real_backends(self, name, cls):
        backend = get_backend(name, workers=2)
        assert isinstance(backend, cls)
        assert backend.name == name
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_choices_cover_factory(self):
        assert set(BACKEND_CHOICES) == {"sim", "serial", "thread", "process"}

    def test_serial_is_single_worker(self):
        assert SerialBackend(workers=8).workers == 1


class TestMapContract:
    @pytest.mark.parametrize("factory", [SerialBackend, lambda: ThreadBackend(3)])
    def test_in_memory_map_order_and_shared(self, factory):
        with factory() as backend:
            backend.open("session")
            out = backend.map(_double, list(range(20)))
        assert out == [("session", i * 2) for i in range(20)]

    def test_process_map_order_and_shared(self):
        with ProcessBackend(workers=2) as backend:
            backend.open({"k": 7})
            out = backend.map(_double, list(range(8)))
        assert out == [({"k": 7}, i * 2) for i in range(8)]

    def test_process_map_requires_open(self):
        backend = ProcessBackend(workers=1)
        with pytest.raises(RuntimeError, match="before open"):
            backend.map(_double, [1])

    def test_process_reopen_same_shared_is_idempotent(self):
        backend = ProcessBackend(workers=1)
        try:
            shared = ("stable",)
            backend.open(shared)
            pool = backend._pool
            backend.open(shared)
            assert backend._pool is pool  # same identity: no pool churn
            backend.open(("different",))
            assert backend._pool is not pool  # new shared: fresh workers
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = ThreadBackend(workers=1)
        backend.open(None)
        backend.map(_double, [1])
        backend.close()
        backend.close()


class _FakeSnapshot:
    def __init__(self, accounts):
        self._accounts = accounts

    def account(self, address):
        return self._accounts.get(address)


class TestFootprintGuards:
    A = Address(b"\xaa" * 20)
    B = Address(b"\xbb" * 20)

    def test_guarded_snapshot_allows_footprint(self):
        base = _FakeSnapshot({self.A: "acct-a"})
        view = GuardedSnapshot(base, frozenset([self.A]))
        assert view.account(self.A) == "acct-a"

    def test_guarded_snapshot_rejects_outside_footprint(self):
        view = GuardedSnapshot(_FakeSnapshot({}), frozenset([self.A]))
        with pytest.raises(FootprintMiss) as exc:
            view.account(self.B)
        assert exc.value.address == self.B

    def test_slice_snapshot_mirrors_guard_semantics(self):
        base = _FakeSnapshot({self.A: "acct-a"})
        view = SliceSnapshot(build_state_slice(base, frozenset([self.A])))
        assert view.account(self.A) == "acct-a"
        with pytest.raises(FootprintMiss):
            view.account(self.B)

    def test_footprint_miss_not_swallowed_by_evm_frames(self):
        # the EVM frame loop catches ValueError/MemoryError as in-frame
        # failures; a footprint miss must escape to abort the whole attempt
        assert not issubclass(FootprintMiss, ValueError)
        assert not issubclass(FootprintMiss, MemoryError)


class TestCliSurface:
    def test_backend_flag_defaults_to_sim(self):
        args = build_parser().parse_args(["demo"])
        assert args.backend == "sim"
        assert args.workers is None

    def test_backend_flag_accepts_all_choices(self):
        for name in BACKEND_CHOICES:
            args = build_parser().parse_args(["--backend", name, "demo"])
            assert args.backend == name

    def test_backend_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "gpu", "demo"])

    def test_workers_flag(self):
        args = build_parser().parse_args(["--backend", "process", "--workers", "3", "demo"])
        assert args.workers == 3
