"""Cross-backend equivalence: same workload + seed => identical outcomes.

The whole point of the deterministic wave/merge drivers in ``repro.exec``
is that switching execution substrate never changes a single decision:
block contents, state roots, abort/commit/drop choices and fault-handling
paths must be byte-identical across serial, thread and process backends —
and, for the validator, identical to the simulated-clock path too (the
proposer's wave schedule legitimately differs from the sim event loop, so
its equivalence class is the three real backends).
"""

import dataclasses

import pytest

from repro.chain.blockchain import Blockchain
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode
from repro.txpool.pool import TxPool
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig

BACKEND_FACTORIES = (
    ("serial", lambda: SerialBackend()),
    ("thread", lambda: ThreadBackend(2)),
    ("process", lambda: ProcessBackend(2)),
)


def _coinbase():
    from repro.common.types import Address

    return Address(b"\xcc" * 20)


def _ctx(gas_limit=30_000_000):
    return ExecutionContext(
        block_number=1, timestamp=1_000, coinbase=_coinbase(), gas_limit=gas_limit
    )


def _txs(universe, n=36, seed=5):
    generator = BlockWorkloadGenerator(
        dataclasses.replace(universe, nonces={}),
        WorkloadConfig(txs_per_block=n, tx_count_jitter=0.0, seed=seed),
    )
    return generator.generate_block_txs()


def _sealed_block(universe, txs):
    chain = Blockchain(universe.genesis)
    node = ProposerNode("equiv-proposer")
    return node.build_block(chain.head.header, universe.genesis, txs).block


class TestProposerEquivalence:
    def test_identical_blocks_across_backends(self, small_universe):
        txs = _txs(small_universe)
        ctx = _ctx()
        outcomes = {}
        for name, factory in BACKEND_FACTORIES:
            pool = TxPool()
            pool.add_many(txs)
            with factory() as backend:
                proposer = OCCWSIProposer(
                    config=ProposerConfig(lanes=4), backend=backend
                )
                outcomes[name] = proposer.propose(small_universe.genesis, pool, ctx)

        reference = outcomes["serial"]
        ref_hashes = [c.tx.hash for c in reference.committed]
        ref_root = reference.final_state(coinbase=ctx.coinbase).state_root()
        assert ref_hashes, "workload committed nothing"
        for name, result in outcomes.items():
            assert [c.tx.hash for c in result.committed] == ref_hashes, name
            assert [c.version for c in result.committed] == [
                c.version for c in reference.committed
            ], name
            assert result.final_state(coinbase=ctx.coinbase).state_root() == ref_root, name
            assert result.invalid_dropped == reference.invalid_dropped, name
            assert result.retries_exhausted == reference.retries_exhausted, name
            assert result.stats.aborts == reference.stats.aborts, name

    def test_wave_snapshots_respect_dependencies(self, small_universe):
        # nonce chains force cross-wave ordering: every backend must pack
        # them in nonce order via the committed-writes overlay
        txs = _txs(small_universe, n=24, seed=9)
        ctx = _ctx()
        roots = set()
        for _, factory in BACKEND_FACTORIES[:2]:  # serial vs thread is enough
            pool = TxPool()
            pool.add_many(txs)
            with factory() as backend:
                proposer = OCCWSIProposer(
                    config=ProposerConfig(lanes=8), backend=backend
                )
                result = proposer.propose(small_universe.genesis, pool, ctx)
            by_sender = {}
            for c in result.committed:
                sender = c.tx.sender
                assert by_sender.get(sender, -1) < c.tx.nonce
                by_sender[sender] = c.tx.nonce
            roots.add(result.final_state(coinbase=ctx.coinbase).state_root())
        assert len(roots) == 1


class TestValidatorEquivalence:
    def test_accepts_identically_including_sim(self, small_universe):
        block = _sealed_block(small_universe, _txs(small_universe))
        results = {}
        sim = ParallelValidator(config=ValidatorConfig(lanes=4))
        results["sim"] = sim.validate_block(block, small_universe.genesis)
        for name, factory in BACKEND_FACTORIES:
            with factory() as backend:
                validator = ParallelValidator(
                    config=ValidatorConfig(lanes=4), backend=backend
                )
                results[name] = validator.validate_block(block, small_universe.genesis)

        reference = results["sim"]
        assert reference.accepted, reference.reason
        ref_root = reference.post_state.state_root()
        for name, res in results.items():
            assert res.accepted, (name, res.reason)
            assert res.post_state.state_root() == ref_root, name
            assert [r.gas_used for r in res.tx_results] == [
                r.gas_used for r in reference.tx_results
            ], name
            assert res.tx_costs == reference.tx_costs, name
            assert not res.used_serial_fallback, name

    @pytest.mark.parametrize("kind", ["state_root", "profile_gas", "drop_profile"])
    def test_rejects_corruption_identically(self, small_universe, kind):
        block = _sealed_block(small_universe, _txs(small_universe, n=20))
        corrupted = FaultInjector(FaultConfig(seed=3)).corrupt_block(block, kind)
        verdicts = set()
        sim = ParallelValidator(config=ValidatorConfig(lanes=4))
        res = sim.validate_block(corrupted, small_universe.genesis)
        verdicts.add((res.accepted, res.failure.reason if res.failure else None))
        for name, factory in BACKEND_FACTORIES:
            with factory() as backend:
                validator = ParallelValidator(
                    config=ValidatorConfig(lanes=4), backend=backend
                )
                res = validator.validate_block(corrupted, small_universe.genesis)
            verdicts.add((res.accepted, res.failure.reason if res.failure else None))
        assert len(verdicts) == 1, verdicts
        assert not next(iter(verdicts))[0]


@pytest.mark.faults
class TestFaultEquivalence:
    def _validate_everywhere(self, block, universe, injector, **cfg):
        config = ValidatorConfig(lanes=4, **cfg)
        results = {}
        sim = ParallelValidator(config=config, injector=injector)
        results["sim"] = sim.validate_block(block, universe.genesis)
        for name, factory in BACKEND_FACTORIES:
            with factory() as backend:
                validator = ParallelValidator(
                    config=config, injector=injector, backend=backend
                )
                results[name] = validator.validate_block(block, universe.genesis)
        return results

    def test_transient_crash_retry_ladder_matches(self, small_universe):
        block = _sealed_block(small_universe, _txs(small_universe, n=20))
        injector = FaultInjector(
            FaultConfig(seed=0, worker_fault_rate=1.0, worker_fault_attempts=1)
        )
        results = self._validate_everywhere(block, small_universe, injector)
        reference = results["sim"]
        assert reference.accepted
        assert reference.worker_faults == 1
        for name, res in results.items():
            assert res.accepted, (name, res.reason)
            assert res.worker_faults == reference.worker_faults, name
            assert res.exec_attempts == reference.exec_attempts, name
            assert res.post_state.state_root() == reference.post_state.state_root(), name
            assert not res.used_serial_fallback, name

    def test_permanent_crash_degrades_identically(self, small_universe):
        block = _sealed_block(small_universe, _txs(small_universe, n=20))
        injector = FaultInjector(
            FaultConfig(seed=0, worker_fault_rate=1.0, worker_fault_attempts=10**6)
        )
        results = self._validate_everywhere(block, small_universe, injector)
        reference = results["sim"]
        assert reference.accepted
        assert reference.used_serial_fallback
        for name, res in results.items():
            assert res.accepted, (name, res.reason)
            assert res.used_serial_fallback, name
            assert res.worker_faults == reference.worker_faults, name
            assert res.post_state.state_root() == reference.post_state.state_root(), name

    def test_stalls_charge_identical_costs(self, small_universe):
        block = _sealed_block(small_universe, _txs(small_universe, n=20))
        injector = FaultInjector(
            FaultConfig(seed=7, stall_rate=0.5, stall_delay_us=250.0)
        )
        results = self._validate_everywhere(block, small_universe, injector)
        reference = results["sim"]
        assert reference.accepted
        assert any(  # the seed actually stalled something
            cost > base_cost
            for cost, base_cost in zip(
                reference.tx_costs,
                ParallelValidator(config=ValidatorConfig(lanes=4))
                .validate_block(block, small_universe.genesis)
                .tx_costs,
            )
        )
        for name, res in results.items():
            assert res.tx_costs == reference.tx_costs, name
            assert res.post_state.state_root() == reference.post_state.state_root(), name
