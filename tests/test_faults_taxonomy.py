"""The typed failure taxonomy, exercised end to end.

Every :class:`FailureReason` variant must be reachable through the public
validator surface (``validate_block`` / ``process_blocks`` /
``receive_blocks``) — the scenario registry in ``repro.faults.scenarios``
is the executable proof, and these tests pin it.
"""

import pytest

pytestmark = pytest.mark.faults

from repro.faults.errors import BYZANTINE_REASONS, FailureReason, ValidationFailure
from repro.faults.scenarios import (
    SCENARIO_FOR_REASON,
    SCENARIOS,
    build_env,
    run_scenario,
)


class TestRegistryCoverage:
    def test_every_reason_has_a_scenario(self):
        missing = [r for r in FailureReason if r not in SCENARIO_FOR_REASON]
        assert not missing, f"unreachable failure reasons: {missing}"

    def test_registry_names_are_unique_and_self_describing(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description


@pytest.mark.parametrize("reason", list(FailureReason), ids=lambda r: r.value)
def test_reason_reachable_through_public_api(reason):
    """Each variant is produced by real validation, not hand-built errors."""
    scenario = SCENARIO_FOR_REASON[reason]
    outcome = run_scenario(scenario.name)
    assert outcome.triggered, (
        f"{scenario.name} did not produce {reason}: observed {outcome.observed}"
    )
    # a typed failure always rides on a rejection, never an acceptance
    for failure, accepted in zip(outcome.failures, outcome.accepted):
        if failure is not None and failure.reason == reason:
            assert not accepted


class TestByzantineRejections:
    """Profile/header lies must reject without committing any state."""

    @pytest.mark.parametrize(
        "name",
        [
            "malformed_block",
            "profile_read_mismatch",
            "profile_write_mismatch",
            "profile_gas_mismatch",
            "receipt_mismatch",
            "state_root_mismatch",
        ],
    )
    def test_byzantine_reason_classified(self, name):
        outcome = run_scenario(name)
        assert outcome.accepted == [False]
        assert outcome.failures[0] is not None
        assert outcome.failures[0].reason in BYZANTINE_REASONS


class TestGracefulDegradation:
    def test_serial_fallback_commits_identical_root(self):
        """The Block-STM guarantee: permanent worker crashes degrade to
        serial re-execution with the exact honest state root."""
        outcome = run_scenario("degrade_serial_fallback")
        assert outcome.accepted == [True]
        assert outcome.extra["used_serial_fallback"] is True
        assert outcome.extra["worker_faults"] >= 1
        assert outcome.extra["state_root"] is not None
        assert outcome.extra["state_root"] == outcome.extra["honest_state_root"]

    def test_transient_fault_healed_by_parallel_retry(self):
        outcome = run_scenario("degrade_transient")
        assert outcome.accepted == [True]
        assert outcome.extra["used_serial_fallback"] is False
        assert outcome.extra["worker_faults"] == 1
        assert outcome.extra["exec_attempts"] == 2

    def test_retry_backoff_charges_simulated_time(self):
        """A degraded run must cost more simulated time than the honest one."""
        from repro.faults.injector import FaultConfig, FaultInjector

        env = build_env(0)
        injector = FaultInjector(
            FaultConfig(seed=0, worker_fault_rate=1.0, worker_fault_attempts=10**6)
        )
        degraded = env.fresh_validator(
            injector=injector, max_parallel_retries=2
        ).validate_block(env.honest.block, env.parent_state)
        honest = env.fresh_validator().validate_block(
            env.honest.block, env.parent_state
        )
        assert degraded.accepted and honest.accepted
        assert degraded.phases.commit_end > honest.phases.commit_end
        assert degraded.stats.serial_fallbacks == 1
        assert honest.stats.serial_fallbacks == 0


class TestQuarantine:
    def test_strikes_then_refusal(self):
        outcome = run_scenario("proposer_quarantined")
        assert outcome.extra["quarantined"] == ["proposer-0"]
        assert all(r in BYZANTINE_REASONS for r in outcome.extra["strike_reasons"])
        assert outcome.failures[0].reason == FailureReason.PROPOSER_QUARANTINED

    def test_honest_proposer_never_quarantined(self):
        from repro.core.pipeline import PipelineConfig
        from repro.network.node import ValidatorNode

        env = build_env(0)
        node = ValidatorNode(
            "validator-0",
            env.universe.genesis,
            config=PipelineConfig(worker_lanes=4),
            quarantine_threshold=1,
        )
        outcome = node.receive_blocks([env.honest.block])
        assert outcome.accepted and not node.quarantined_proposers


class TestDeterminism:
    @pytest.mark.parametrize("name", ["profile_write_mismatch", "worker_fault"])
    def test_same_seed_same_outcome(self, name):
        first = run_scenario(name, seed=3)
        second = run_scenario(name, seed=3)
        assert first.failures == second.failures
        assert first.accepted == second.accepted

    def test_failure_is_hashable_value_object(self):
        f = ValidationFailure(FailureReason.TIMEOUT, tx_index=4, detail="x")
        assert f == ValidationFailure(FailureReason.TIMEOUT, tx_index=4, detail="x")
        assert "timeout" in str(f) and "@tx 4" in str(f)


class TestStatsCounters:
    def test_pipeline_aggregates_fault_counters(self):
        """RunStats carries typed failure counts through the pipeline."""
        from repro.core.pipeline import PipelineConfig, ValidatorPipeline

        env = build_env(0)
        bad = env.injector.corrupt_block(env.honest.block, "state_root")
        pipeline = ValidatorPipeline(config=PipelineConfig(worker_lanes=4))
        result = pipeline.process_blocks(
            [env.honest.block, bad],
            parent_states={env.genesis_hash: env.parent_state},
        )
        # honest sibling commits; the liar is counted under its reason
        assert result.stats.failures == {"state_root_mismatch": 1}
        assert result.rejection_rate == pytest.approx(0.5)
