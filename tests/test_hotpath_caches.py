"""Hot-path cache layer: equivalence and bookkeeping tests (ISSUE 4).

Every cache here is an *optimisation over a pure function* — so the core of
each test is equivalence against the uncached computation: ``keccak_cached``
vs ``keccak``, ``update_many`` vs per-key set/delete, the batched
``StateDB.commit`` vs a from-scratch trie rebuild, cached base-snapshot
reads vs ``read_base_value``, and a validator with an :class:`ArtifactCache`
attached vs one without.  Bookkeeping (LRU order, eviction, sentinel-cached
``None``, fork-sibling invalidation, metrics counters) is checked alongside.
"""

import dataclasses
import random

import pytest

from repro.common.hashing import keccak
from repro.common.types import Address
from repro.core.artifacts import ArtifactCache, BlockArtifacts, profile_footprints
from repro.core.pipeline import ValidatorPipeline
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode
from repro.obs.metrics import MetricsRegistry
from repro.state.access import balance_key, nonce_key, storage_key
from repro.state.account import AccountData
from repro.state.cache import (
    BoundedCache,
    ReadThroughCache,
    keccak_cache_stats,
    keccak_cached,
)
from repro.state.statedb import StateDB, genesis_snapshot
from repro.state.trie import SecureMPT
from repro.state.versioned import MultiVersionStore, read_base_value


class TestBoundedCache:
    def test_lru_eviction_order(self):
        cache = BoundedCache(3)
        for i in range(3):
            cache.put(i, str(i))
        # touching 0 makes it most recently used; 1 becomes the victim
        assert cache.get(0) == "0"
        cache.put(3, "3")
        assert 1 not in cache
        assert 0 in cache and 2 in cache and 3 in cache
        assert cache.stats.evictions == 1

    def test_hit_miss_counters(self):
        cache = BoundedCache(2)
        assert cache.get("absent") is None
        assert cache.get("absent", default=7) == 7
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats.as_dict() == {"hits": 1, "misses": 2, "evictions": 0}

    def test_put_existing_key_updates_without_eviction(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)  # update, not insert: nothing evicted
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 3

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedCache(0)

    def test_clear(self):
        cache = BoundedCache(4)
        cache.put(1, 1)
        cache.clear()
        assert len(cache) == 0 and 1 not in cache


class TestKeccakMemo:
    def test_matches_uncached_keccak(self):
        rng = random.Random(2024)
        samples = [b"", b"\x00" * 20, b"\xff" * 32] + [
            rng.randbytes(rng.choice([20, 32])) for _ in range(64)
        ]
        for data in samples:
            assert keccak_cached(data) == keccak(data)
            # second call: served from the memo, still identical
            assert keccak_cached(data) == keccak(data)

    def test_stats_grow_and_report_size(self):
        before = keccak_cache_stats()
        preimage = random.Random(77).randbytes(32)
        keccak_cached(preimage)
        keccak_cached(preimage)
        after = keccak_cache_stats()
        assert after["hits"] >= before["hits"] + 1
        assert after["size"] >= 1


class TestReadThroughCache:
    def test_loader_called_once_per_key(self):
        calls = []
        cache = ReadThroughCache(lambda k: (calls.append(k), k * 2)[1])
        assert cache.get(3) == 6
        assert cache.get(3) == 6
        assert calls == [3]
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_none_values_are_cached_via_sentinel(self):
        calls = []
        cache = ReadThroughCache(lambda k: calls.append(k))
        assert cache.get("x") is None
        assert cache.get("x") is None
        assert calls == ["x"]  # absence cached, loader not re-consulted

    def test_bounded_eviction_reloads(self):
        calls = []
        cache = ReadThroughCache(lambda k: (calls.append(k), k)[1], maxsize=2)
        cache.get(1), cache.get(2), cache.get(3)  # evicts 1
        cache.get(1)  # miss again: re-loaded, evicting 2 in turn
        assert calls == [1, 2, 3, 1]
        assert cache.stats.evictions == 2


class TestUpdateMany:
    def _addresses(self, rng, n):
        return [rng.randbytes(32) for _ in range(n)]

    def test_equivalent_to_sequential_sets_and_deletes(self):
        rng = random.Random(5)
        keys = self._addresses(rng, 24)
        base = SecureMPT()
        for key in keys:
            base = base.set(key, rng.randbytes(8))
        # mixed batch: overwrites, fresh inserts, and b"" deletes
        batch = []
        for key in rng.sample(keys, 10):
            batch.append((key, rng.randbytes(8)))
        for _ in range(5):
            batch.append((rng.randbytes(32), rng.randbytes(8)))
        for key in rng.sample(keys, 4):
            batch.append((key, b""))
        sequential = base
        for key, value in batch:
            sequential = sequential.delete(key) if value == b"" else sequential.set(key, value)
        assert base.update_many(batch).root_hash() == sequential.root_hash()

    def test_empty_batch_returns_self(self):
        trie = SecureMPT().set(b"\x01" * 32, b"v")
        assert trie.update_many([]) is trie

    def test_delete_of_absent_key_keeps_identity(self):
        trie = SecureMPT().set(b"\x01" * 32, b"v")
        same = trie.update_many([(b"\x02" * 32, b"")])
        assert same.root_hash() == trie.root_hash()


class TestCommitEquivalence:
    """The batched commit must produce the exact root a from-scratch
    rebuild of the final account map produces, across randomized workloads
    heavy on no-op rewrites (the case the batching optimises away)."""

    @pytest.mark.parametrize("seed", [0, 9, 123])
    def test_randomized_commit_matches_from_scratch_rebuild(self, seed):
        rng = random.Random(seed)
        addrs = [Address.from_int(1000 + i) for i in range(8)]
        alloc = {}
        for a in addrs:
            storage = {s: rng.randint(1, 50) for s in rng.sample(range(64), 24)}
            alloc[a] = AccountData(
                nonce=rng.randint(0, 5),
                balance=rng.randint(1, 10**6),
                code=b"\x60\x00" if rng.random() < 0.5 else b"",
                storage=storage,
            )
        snapshot = genesis_snapshot(alloc)

        for _round in range(3):
            db = StateDB(snapshot)
            for a in addrs:
                base = snapshot.account(a)
                if rng.random() < 0.3:
                    db.set_balance(a, rng.randint(0, 10**6))
                for s in rng.sample(range(64), 16):
                    current = base.storage.get(s, 0) if base else 0
                    roll = rng.random()
                    if roll < 0.5:
                        db.set_storage(a, s, current)  # no-op rewrite
                    elif roll < 0.75:
                        db.set_storage(a, s, rng.randint(1, 50))
                    else:
                        db.set_storage(a, s, 0)  # delete
            snapshot = db.commit()

            rebuilt = genesis_snapshot(
                {a: acct for a, acct in snapshot.accounts.items()}
            )
            assert snapshot.state_root() == rebuilt.state_root()
            for a in addrs:
                assert snapshot.storage_root(a) == rebuilt.storage_root(a)

    def test_noop_only_commit_keeps_root(self):
        a = Address.from_int(42)
        snapshot = genesis_snapshot(
            {a: AccountData(nonce=1, balance=100, code=b"", storage={7: 9})}
        )
        db = StateDB(snapshot)
        db.set_storage(a, 7, 9)
        db.set_balance(a, 100)
        db.set_storage(a, 8, 0)  # write zero to an already-absent slot
        committed = db.commit()
        assert committed.state_root() == snapshot.state_root()

    def test_eip158_empty_account_still_pruned(self):
        a = Address.from_int(42)
        b = Address.from_int(43)
        snapshot = genesis_snapshot(
            {a: AccountData(nonce=0, balance=5, code=b"", storage={})}
        )
        db = StateDB(snapshot)
        db.set_balance(a, 0)  # becomes empty -> pruned
        db.create_account(b)  # created empty -> never materialised
        committed = db.commit()
        assert a not in committed and b not in committed
        assert committed.state_root() == genesis_snapshot({}).state_root()


class TestBaseReadCache:
    def test_cached_reads_match_read_base_value(self):
        rng = random.Random(3)
        addrs = [Address.from_int(10 + i) for i in range(4)]
        alloc = {
            a: AccountData(
                nonce=i, balance=100 * (i + 1), code=b"", storage={1: i + 5}
            )
            for i, a in enumerate(addrs)
        }
        base = genesis_snapshot(alloc)
        store = MultiVersionStore(base)
        keys = []
        for a in addrs + [Address.from_int(999)]:  # incl. an absent account
            keys += [balance_key(a), nonce_key(a), storage_key(a, 1), storage_key(a, 2)]
        rng.shuffle(keys)
        for key in keys * 3:
            assert store.read_at(key, 0) == read_base_value(base, key)
        stats = store.base_cache.stats
        assert stats.misses == len(keys)
        assert stats.hits == 2 * len(keys)


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    node = ProposerNode("alice")
    return node.build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestBlockArtifacts:
    def test_footprints_match_inline_derivation(self, sealed):
        profile = sealed.block.profile
        art = BlockArtifacts(profile, "account")
        assert art.footprints == tuple(
            e.rw.touched_addresses() for e in profile.entries
        )
        assert art.gas_estimates == tuple(e.gas_used for e in profile.entries)
        key_fps = profile_footprints(profile, "key")
        assert len(key_fps) == len(profile.entries)
        with pytest.raises(ValueError):
            profile_footprints(profile, "bogus")

    def test_plan_memoized_per_lane_count(self, sealed):
        art = BlockArtifacts(sealed.block.profile, "account")
        p4 = art.plan_for(4, "gas_lpt", 0)
        assert art.plan_for(4, "gas_lpt", 0) is p4  # memo hit: same object
        assert art.plan_for(8, "gas_lpt", 0) is not p4
        assert art.component_footprints() is art.component_footprints()

    def test_cache_hit_returns_same_artifacts(self, sealed):
        cache = ArtifactCache()
        first = cache.get(sealed.block, "account")
        second = cache.get(sealed.block, "account")
        assert first is second
        assert cache.hits == 1 and cache.misses == 1
        # a different granularity is a distinct entry
        assert cache.get(sealed.block, "key") is not first
        assert len(cache) == 2

    def test_profile_less_block_returns_none(self, sealed):
        stripped = dataclasses.replace(sealed.block, profile=None)
        cache = ArtifactCache()
        assert cache.get(stripped, "account") is None
        assert len(cache) == 0

    def test_invalidate_and_siblings(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(3, seed=8).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        blocks = forks.blocks
        cache = ArtifactCache()
        for block in blocks:
            assert cache.get(block, "account") is not None
        winner = blocks[0]
        dropped = cache.invalidate_siblings(winner.header.number, winner.hash)
        assert dropped == len(blocks) - 1
        assert len(cache) == 1
        assert cache.invalidate(winner.hash) == 1
        assert len(cache) == 0
        assert cache.invalidations == len(blocks)

    def test_lru_eviction_bounded(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(3, seed=8).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        cache = ArtifactCache(maxsize=2)
        for block in forks.blocks:
            cache.get(block, "account")
        assert len(cache) == 2
        assert cache.evictions == 1
        # the first block was evicted: asking again is a miss
        misses = cache.misses
        cache.get(forks.blocks[0], "account")
        assert cache.misses == misses + 1

    def test_metrics_counters_published(self, sealed):
        metrics = MetricsRegistry()
        cache = ArtifactCache(metrics=metrics)
        cache.get(sealed.block, "account")
        cache.get(sealed.block, "account")
        cache.invalidate(sealed.block.hash)
        snap = metrics.snapshot()
        assert snap["counters"]["artifacts.hits"] == 1
        assert snap["counters"]["artifacts.misses"] == 1
        assert snap["counters"]["artifacts.invalidations"] == 1


class TestValidatorWithArtifacts:
    def test_cached_validation_identical_to_uncached(self, sealed, small_universe):
        plain = ParallelValidator()
        cached = ParallelValidator(artifacts=ArtifactCache())
        r_plain = plain.validate_block(sealed.block, small_universe.genesis)
        r1 = cached.validate_block(sealed.block, small_universe.genesis)
        r2 = cached.validate_block(sealed.block, small_universe.genesis)  # cache hit
        assert cached.artifacts.hits == 1
        for res in (r1, r2):
            assert res.accepted
            assert res.makespan == r_plain.makespan
            assert res.phases == r_plain.phases
            assert res.post_state.state_root() == r_plain.post_state.state_root()

    def test_lane_sweep_reuses_graph(self, sealed, small_universe):
        cache = ArtifactCache()
        roots = set()
        for lanes in (1, 2, 8):
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=lanes), artifacts=cache
            )
            res = validator.validate_block(sealed.block, small_universe.genesis)
            assert res.accepted
            roots.add(bytes(res.post_state.state_root()))
        assert len(roots) == 1
        assert cache.misses == 1 and cache.hits == 2  # one graph, three plans

    def test_pipeline_invalidates_losing_fork_siblings(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(2, seed=8).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        parent_states = {genesis_chain.genesis.header.hash: small_universe.genesis}
        pipe = ValidatorPipeline()
        res = pipe.process_blocks(forks.blocks, parent_states)
        assert res.all_accepted
        # exactly one sibling survives per height in the artifact cache
        assert len(pipe.artifacts) <= 1
        assert pipe.artifacts.invalidations + pipe.artifacts.evictions >= 1

    def test_pipeline_results_unchanged_by_artifact_cache(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(2, seed=8).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        parent_states = {genesis_chain.genesis.header.hash: small_universe.genesis}
        a = ValidatorPipeline().process_blocks(forks.blocks, parent_states)
        b = ValidatorPipeline().process_blocks(forks.blocks, parent_states)
        assert a.makespan == b.makespan
        assert [t.commit_end for t in a.timings] == [t.commit_end for t in b.timings]
        assert [r.accepted for r in a.results] == [r.accepted for r in b.results]
