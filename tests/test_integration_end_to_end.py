"""End-to-end integration: the full proposer → network → validator loop.

This is the §5.2 correctness check in miniature: over a multi-block chain
with forks, every execution mode (serial, OCC-WSI proposer, BlockPilot
validator, two-phase OCC) must agree on every state root.
"""


from repro.core.baselines import SerialExecutor, TwoPhaseOCCExecutor
from repro.core.validator import ParallelValidator
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode, ValidatorNode


class TestChainGrowth:
    def test_multi_block_chain_all_roots_agree(
        self, small_universe, small_generator
    ):
        proposer = ProposerNode("alice")
        validator = ValidatorNode("bob", small_universe.genesis)
        serial = SerialExecutor()
        occ = TwoPhaseOCCExecutor()

        parent_header = validator.chain.genesis.header
        parent_state = small_universe.genesis
        for height in range(1, 6):
            txs = small_generator.generate_block_txs()
            sealed = proposer.build_block(parent_header, parent_state, txs)
            block = sealed.block
            assert block.number == height

            # 1. BlockPilot validator accepts
            outcome = validator.receive_blocks([block])
            assert outcome.accepted == [block], outcome.pipeline.results[0].reason

            # 2. serial execution agrees
            sres = serial.execute_block(block, parent_state)
            assert sres.post_state.state_root() == block.header.state_root

            # 3. two-phase OCC agrees
            ores = occ.execute_block(block, parent_state)
            assert ores.post_state.state_root() == block.header.state_root

            parent_header = block.header
            parent_state = validator.chain.state_at(block.hash)

        assert validator.chain.height() == 5
        assert [b.number for b in validator.chain.canonical_chain()] == list(range(6))

    def test_forked_chain_with_uncles(self, small_universe, small_generator):
        validator = ValidatorNode("bob", small_universe.genesis)
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(3, seed=6).propose_forks(
            validator.chain.genesis.header, small_universe.genesis, txs
        )
        outcome = validator.receive_blocks(forks.blocks)
        assert len(outcome.accepted) == 3
        assert validator.chain.uncle_count() == 2

        # grow from one sibling; the chain reorgs onto that branch
        head = validator.chain.head
        txs2 = small_generator.generate_block_txs()
        child = ProposerNode("carol").build_block(
            head.header, validator.chain.state_at(head.hash), txs2
        )
        outcome2 = validator.receive_blocks([child.block])
        assert outcome2.new_head
        assert validator.chain.head is child.block
        assert validator.chain.height() == 2

    def test_two_validators_agree(self, small_universe, small_generator):
        """Different nodes processing the same blocks reach identical state
        (the determinism requirement of §3.3)."""
        v1 = ValidatorNode("bob", small_universe.genesis)
        v2 = ValidatorNode("carol", small_universe.genesis)
        proposer = ProposerNode("alice")

        parent_header = v1.chain.genesis.header
        parent_state = small_universe.genesis
        for _ in range(3):
            txs = small_generator.generate_block_txs()
            sealed = proposer.build_block(parent_header, parent_state, txs)
            for v in (v1, v2):
                outcome = v.receive_blocks([sealed.block])
                assert outcome.accepted
            parent_header = sealed.block.header
            parent_state = v1.chain.state_at(sealed.block.hash)

        assert (
            v1.chain.head_state.state_root() == v2.chain.head_state.state_root()
        )
        assert v1.chain.head.hash == v2.chain.head.hash

    def test_validator_with_different_thread_count_agrees(
        self, small_universe, small_generator
    ):
        """§3.3: the final result must not depend on the validator's
        parallelism level (2 vs 16 threads)."""
        from repro.core.pipeline import PipelineConfig

        proposer = ProposerNode("alice")
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(
            ValidatorNode("x", small_universe.genesis).chain.genesis.header,
            small_universe.genesis,
            txs,
        )
        v_small = ValidatorNode(
            "bob", small_universe.genesis, config=PipelineConfig(worker_lanes=2)
        )
        v_large = ValidatorNode(
            "carol", small_universe.genesis, config=PipelineConfig(worker_lanes=16)
        )
        for v in (v_small, v_large):
            assert v.receive_blocks([sealed.block]).accepted
        assert (
            v_small.chain.head_state.state_root()
            == v_large.chain.head_state.state_root()
        )

    def test_proposer_without_profile_still_validated_by_fallback(
        self, small_universe, small_generator
    ):
        from repro.core.pipeline import PipelineConfig
        from repro.core.validator import ValidatorConfig

        proposer = ProposerNode("alice")
        genesis_header = ValidatorNode(
            "x", small_universe.genesis
        ).chain.genesis.header
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(
            genesis_header, small_universe.genesis, txs, include_profile=False
        )
        validator = ParallelValidator(
            config=ValidatorConfig(preexecute_fallback=True)
        )
        res = validator.validate_block(sealed.block, small_universe.genesis)
        assert res.accepted
        assert res.post_state.state_root() == sealed.block.header.state_root


class TestCrossModeEquivalence:
    def test_proposer_lane_count_changes_order_not_validity(
        self, small_universe, small_generator
    ):
        """Different proposer parallelism produces different (but valid)
        serializable blocks over the same pending set — Figure 2's point."""
        from repro.core.occ_wsi import ProposerConfig

        genesis_header = ValidatorNode(
            "x", small_universe.genesis
        ).chain.genesis.header
        txs = small_generator.generate_block_txs()
        sealed_1 = ProposerNode(
            "a", config=ProposerConfig(lanes=1)
        ).build_block(genesis_header, small_universe.genesis, txs)
        sealed_16 = ProposerNode(
            "a", config=ProposerConfig(lanes=16)
        ).build_block(genesis_header, small_universe.genesis, txs)

        validator = ParallelValidator()
        for sealed in (sealed_1, sealed_16):
            res = validator.validate_block(sealed.block, small_universe.genesis)
            assert res.accepted, res.reason

        # both blocks pack the same transaction set
        assert {t.hash for t in sealed_1.block.transactions} == {
            t.hash for t in sealed_16.block.transactions
        }
