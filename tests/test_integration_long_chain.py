"""Long-chain soak: a §5.2-style correctness run with periodic forks.

Grows a 15-block chain through a ValidatorNode; every third height two
proposers race (fork), siblings are pipelined together, and the chain
reorgs when a branch extends.  At every height the canonical root must
be reproducible by serial execution from genesis.
"""

import pytest

from repro.core.baselines import SerialExecutor
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode, ValidatorNode


@pytest.mark.slow
def test_long_chain_with_periodic_forks(small_universe, small_generator):
    validator = ValidatorNode("soak", small_universe.genesis)
    proposer = ProposerNode("alice")
    serial = SerialExecutor()

    heights = 15
    fork_every = 3
    total_uncles = 0

    for height in range(1, heights + 1):
        parent = validator.chain.head
        parent_state = validator.chain.state_at(parent.hash)
        txs = small_generator.generate_block_txs()

        if height % fork_every == 0:
            forks = ForkSimulator(2, seed=height).propose_forks(
                parent.header, parent_state, txs
            )
            outcome = validator.receive_blocks(forks.blocks)
            assert len(outcome.accepted) == 2, [
                r.reason for r in outcome.pipeline.results
            ]
            total_uncles += 1
        else:
            sealed = proposer.build_block(parent.header, parent_state, txs)
            outcome = validator.receive_blocks([sealed.block])
            assert outcome.accepted, outcome.pipeline.results[0].reason

        # chain invariants at every step
        head = validator.chain.head
        assert head.number == height
        assert (
            validator.chain.head_state.state_root() == head.header.state_root
        )

    assert validator.chain.height() == heights
    assert validator.chain.uncle_count() >= total_uncles

    # full serial replay of the canonical chain from genesis
    state = small_universe.genesis
    for block in validator.chain.canonical_chain()[1:]:
        result = serial.execute_block(block, state)
        assert result.post_state.state_root() == block.header.state_root
        state = result.post_state

    # every canonical head state matches what the validator stored
    assert state.state_root() == validator.chain.head_state.state_root()


@pytest.mark.slow
def test_generator_chain_consistency_across_many_blocks(
    small_universe, small_generator
):
    """The generator's nonce ledger stays in lock-step with the chain over
    a long run (the invariant the workload layer promises)."""
    validator = ValidatorNode("gen", small_universe.genesis)
    proposer = ProposerNode("alice")
    for _ in range(10):
        parent = validator.chain.head
        parent_state = validator.chain.state_at(parent.hash)
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(parent.header, parent_state, txs)
        # every generated tx made it into the block (none invalid/dropped)
        assert len(sealed.block) == len(txs)
        assert sealed.proposal.invalid_dropped == 0
        assert validator.receive_blocks([sealed.block]).accepted

    # on-chain nonces equal the generator's ledger
    head_state = validator.chain.head_state
    for sender, expected in small_universe.nonces.items():
        acct = head_state.account(sender)
        assert acct is not None and acct.nonce == expected
