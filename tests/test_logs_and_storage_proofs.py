"""Log queries (eth_getLogs-style) and combined storage proofs."""

import pytest

from repro.common.types import Address
from repro.network.node import ProposerNode, ValidatorNode
from repro.state.proofs import (
    ProofError,
    prove_account,
    prove_storage,
    verify_storage_proof,
)
from repro.workload.contracts import AMM_RESERVE0_SLOT, erc20_balance_slot


@pytest.fixture()
def grown_chain(small_universe, small_generator):
    validator = ValidatorNode("logs", small_universe.genesis)
    proposer = ProposerNode("alice")
    for _ in range(3):
        parent = validator.chain.head
        state = validator.chain.state_at(parent.hash)
        txs = small_generator.generate_block_txs()
        sealed = proposer.build_block(parent.header, state, txs)
        assert validator.receive_blocks([sealed.block]).accepted
    return validator.chain


class TestGetLogs:
    def test_all_logs_returned_unfiltered(self, grown_chain):
        logs = grown_chain.get_logs()
        assert logs
        numbers = [n for n, _, _ in logs]
        assert numbers == sorted(numbers)

    def test_filter_by_address(self, grown_chain, small_universe):
        token = small_universe.tokens[0]
        logs = grown_chain.get_logs(address=token)
        assert logs
        assert all(log.address == token for _, _, log in logs)

    def test_bloom_filtering_matches_naive_scan(self, grown_chain, small_universe):
        """Bloom-assisted query returns exactly what a full scan finds."""
        for contract in (small_universe.tokens[0], small_universe.nfts[0]):
            fast = grown_chain.get_logs(address=contract)
            naive = [
                (block.number, i, log)
                for block in grown_chain.canonical_chain()
                for i, receipt in enumerate(block.receipts)
                for log in receipt.logs
                if log.address == contract
            ]
            assert fast == naive

    def test_absent_address_empty(self, grown_chain):
        ghost = Address.from_int(0xDEAD0001)
        assert grown_chain.get_logs(address=ghost) == []

    def test_block_range(self, grown_chain):
        all_logs = grown_chain.get_logs()
        only_first = grown_chain.get_logs(from_block=1, to_block=1)
        assert only_first
        assert all(n == 1 for n, _, _ in only_first)
        assert len(only_first) < len(all_logs)

    def test_receipt_logs_consistent_with_counts(self, grown_chain):
        for block in grown_chain.canonical_chain()[1:]:
            for receipt in block.receipts:
                assert len(receipt.logs) == receipt.log_count


class TestStorageProofs:
    def test_prove_existing_slot(self, grown_chain, small_universe):
        snapshot = grown_chain.head_state
        pool, _, _ = small_universe.amms[0]
        account_proof, storage_proof = prove_storage(
            snapshot, pool, AMM_RESERVE0_SLOT
        )
        value = verify_storage_proof(
            snapshot.state_root(), pool, AMM_RESERVE0_SLOT,
            account_proof, storage_proof,
        )
        assert value == snapshot.account(pool).storage[AMM_RESERVE0_SLOT]
        assert value > 0

    def test_prove_token_balance_slot(self, grown_chain, small_universe):
        snapshot = grown_chain.head_state
        token = small_universe.tokens[0]
        holder = next(
            e
            for e in small_universe.eoas
            if snapshot.account(token).storage.get(erc20_balance_slot(e), 0) > 0
        )
        slot = erc20_balance_slot(holder)
        account_proof, storage_proof = prove_storage(snapshot, token, slot)
        value = verify_storage_proof(
            snapshot.state_root(), token, slot, account_proof, storage_proof
        )
        assert value == snapshot.account(token).storage[slot]

    def test_absent_slot_proves_zero(self, grown_chain, small_universe):
        snapshot = grown_chain.head_state
        token = small_universe.tokens[0]
        missing_slot = 999_999_999
        account_proof, storage_proof = prove_storage(snapshot, token, missing_slot)
        assert (
            verify_storage_proof(
                snapshot.state_root(), token, missing_slot,
                account_proof, storage_proof,
            )
            == 0
        )

    def test_absent_account_proves_zero(self, grown_chain):
        snapshot = grown_chain.head_state
        ghost = Address.from_int(0xDEAD0002)
        account_proof, storage_proof = prove_storage(snapshot, ghost, 0)
        assert storage_proof == []
        assert (
            verify_storage_proof(
                snapshot.state_root(), ghost, 0, account_proof, storage_proof
            )
            == 0
        )

    def test_wrong_root_rejected(self, grown_chain, small_universe):
        from repro.common.types import Hash32

        snapshot = grown_chain.head_state
        pool, _, _ = small_universe.amms[0]
        account_proof, storage_proof = prove_storage(
            snapshot, pool, AMM_RESERVE0_SLOT
        )
        with pytest.raises(ProofError):
            verify_storage_proof(
                Hash32(b"\x01" * 32), pool, AMM_RESERVE0_SLOT,
                account_proof, storage_proof,
            )

    def test_eoa_account_proof(self, grown_chain, small_universe):
        snapshot = grown_chain.head_state
        account_proof = prove_account(snapshot, small_universe.eoas[0])
        assert account_proof  # non-empty path to a funded EOA
