"""Network-level fault injection: byzantine proposers, lossy channels.

The headline robustness claims, end to end: honest validators stay in
consensus while byzantine siblings are rejected (and their proposers
quarantined), lossy channels only delay agreement (retransmission makes
delivery eventual), and every run replays bit-identically from its seed.
"""

import pytest

pytestmark = pytest.mark.faults

from repro.core.pipeline import PipelineConfig
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.scenarios import build_env
from repro.network.dissemination import ForkSet, ForkSimulator
from repro.network.node import ValidatorNode
from repro.network.simnet import NetworkConfig, NetworkSimulation
from repro.obs.metrics import MetricsRegistry
from repro.txpool.pool import TxPool
from repro.workload.universe import UniverseConfig, build_universe


def small_world(seed=5):
    return build_universe(
        UniverseConfig(
            n_eoas=120,
            n_tokens=4,
            n_amms=2,
            n_nfts=1,
            n_airdrops=1,
            seed=seed,
        )
    )


class TestByzantineNetwork:
    def test_byzantine_blocks_rejected_chains_agree(self):
        cfg = NetworkConfig(
            rounds=4,
            byzantine_proposers=(1,),
            fork_probability=0.9,
            quarantine_threshold=2,
            seed=101,
        )
        result = NetworkSimulation(small_world(), config=cfg).run()
        assert result.chains_agree
        assert sum(result.failure_counts.values()) >= 1
        # every recorded failure is a byzantine classification or the
        # quarantine that follows it
        assert set(result.failure_counts) <= {
            "profile_write_mismatch",
            "proposer_quarantined",
        }

    def test_repeat_liar_gets_quarantined(self):
        cfg = NetworkConfig(
            rounds=8,
            n_proposers=2,
            byzantine_proposers=(0,),
            fork_probability=1.0,
            quarantine_threshold=2,
            seed=7,
        )
        result = NetworkSimulation(small_world(), config=cfg).run()
        assert result.quarantined == ["proposer-0"]

    def test_honest_network_unchanged(self):
        """No faults configured: the hardened stack is invisible."""
        cfg = NetworkConfig(rounds=3, seed=101)
        result = NetworkSimulation(small_world(), config=cfg).run()
        assert result.chains_agree
        assert result.failure_counts == {}
        assert result.channel_counters is None
        assert result.quarantined == []
        assert result.final_height == 3


class TestFaultyChannel:
    FAULTS = FaultConfig(
        seed=9,
        drop_rate=0.3,
        duplicate_rate=0.2,
        reorder_rate=0.5,
        max_delay_us=500.0,
    )

    def test_lossy_channel_reaches_agreement(self):
        cfg = NetworkConfig(rounds=5, fork_probability=0.5, seed=101)
        result = NetworkSimulation(
            small_world(), config=cfg, faults=self.FAULTS
        ).run()
        # drops only delay blocks (retransmission + end-of-run flush), so
        # every validator converges on the same head and root
        assert result.chains_agree
        counters = result.channel_counters
        assert counters["dropped"] >= 1
        assert counters["delivered"] >= cfg.rounds

    def test_lossy_run_is_deterministic(self):
        cfg = NetworkConfig(rounds=5, fork_probability=0.5, seed=101)

        def run():
            r = NetworkSimulation(
                small_world(), config=cfg, faults=self.FAULTS
            ).run()
            return (r.final_root_hex, r.final_height, r.channel_counters)

        assert run() == run()


class TestNetworkAccounting:
    """Regression tests for the sim-accounting bugs (ISSUE 9 satellites)."""

    def test_sent_delivered_reconcile_after_flush(self):
        """Every sent block is eventually delivered exactly once (drops are
        guaranteed retransmissions), plus one extra delivery per duplicate —
        so the global counters must reconcile once the end-of-run flush has
        drained the backlogs.  The flush path used to skip the
        ``net.blocks_delivered`` increment, leaving the books permanently
        short by however many blocks the final rounds dropped."""
        metrics = MetricsRegistry()
        cfg = NetworkConfig(rounds=5, fork_probability=0.5, seed=101)
        # seed 10 @ 50% drops leaves a non-empty backlog for the final
        # flush, so the reconciliation below genuinely covers the flush path
        faults = FaultConfig(
            seed=10,
            drop_rate=0.5,
            duplicate_rate=0.2,
            reorder_rate=0.5,
            max_delay_us=500.0,
        )
        sim = NetworkSimulation(
            small_world(), config=cfg, faults=faults, metrics=metrics
        )
        result = sim.run()
        counters = result.channel_counters
        assert counters["dropped"] >= 1  # the flush path was exercised
        sent = metrics.counter("net.blocks_sent").value
        delivered = metrics.counter("net.blocks_delivered").value
        assert delivered == sent + counters["duplicated"]
        # the channels' own books agree with the global metric
        assert delivered == counters["delivered"]

    def test_total_txs_counts_canonical_blocks(self):
        """``total_txs`` must count the blocks that actually committed, not
        whichever sibling happened to sit at index 0 of the round's batch.
        Here the byzantine winner publishes a truncated block at index 0;
        the canonical chain holds the honest rival's full block."""
        cfg = NetworkConfig(
            rounds=4,
            n_proposers=2,
            byzantine_proposers=(0,),
            corruption="truncate_txs",
            fork_probability=1.0,
            quarantine_threshold=0,
            seed=11,
        )
        sim = NetworkSimulation(small_world(), config=cfg)
        result = sim.run()
        chain_total = sum(
            len(b) for b in sim.validators[0].chain.canonical_chain()
        )
        assert result.total_txs == chain_total
        # the scenario genuinely exercises the bug: summing index 0 of each
        # round's batch gives a different (wrong) number
        assert sum(r.block_txs[0] for r in result.rounds) != chain_total

    def test_out_of_range_byzantine_proposer_raises(self):
        """A typo'd byzantine index must fail loudly, not silently run the
        honest scenario."""
        cfg = NetworkConfig(n_proposers=3, byzantine_proposers=(7,))
        with pytest.raises(ValueError, match="out of range"):
            NetworkSimulation(small_world(), config=cfg)

    def test_negative_byzantine_proposer_raises(self):
        cfg = NetworkConfig(n_proposers=3, byzantine_proposers=(-1,))
        with pytest.raises(ValueError, match="out of range"):
            NetworkSimulation(small_world(), config=cfg)

    def test_forkset_published_defaults_to_sealed_blocks(self):
        """ForkSet normalises ``published=None`` to the sealed blocks (the
        typed Optional default replacing the old ``type: ignore`` hack)."""
        env = build_env(0)
        sim = ForkSimulator(2, seed=3)
        txs = env.generator.generate_block_txs()
        forks = sim.propose_forks(env.parent_header, env.parent_state, txs)
        defaulted = ForkSet(proposals=forks.proposals)
        assert defaulted.published == [p.block for p in forks.proposals]
        assert defaulted.blocks == defaulted.published


class TestForkSimulatorByzantine:
    def test_byzantine_sibling_is_corrupted_copy(self):
        env = build_env(0)
        sim = ForkSimulator(
            2,
            seed=3,
            injector=env.injector,
            byzantine=(1,),
            corruption="state_root",
        )
        txs = env.generator.generate_block_txs()
        forks = sim.propose_forks(env.parent_header, env.parent_state, txs)
        honest_pub, byz_pub = forks.blocks
        assert honest_pub is forks.proposals[0].block
        assert byz_pub is not forks.proposals[1].block
        assert byz_pub.header.state_root != forks.proposals[1].block.header.state_root

    def test_byzantine_requires_injector(self):
        with pytest.raises(ValueError, match="FaultInjector"):
            ForkSimulator(2, byzantine=(0,))


class TestTxRecovery:
    def test_rejected_block_txs_return_to_pool_once(self):
        env = build_env(0)
        pool = TxPool()
        node = ValidatorNode(
            "validator-0",
            env.universe.genesis,
            config=PipelineConfig(worker_lanes=4),
            txpool=pool,
        )
        bad = env.injector.corrupt_block(env.honest.block, "state_root")
        outcome = node.receive_blocks([bad])
        assert not outcome.accepted
        assert outcome.restored_txs == len(bad.transactions)
        assert len(pool) == len(bad.transactions)
        # redelivery of the same rejected block restores nothing new
        again = node.receive_blocks([bad])
        assert again.restored_txs == 0
        assert len(pool) == len(bad.transactions)

    def test_committed_sibling_keeps_txs_out(self):
        """Txs committed by the accepted sibling are not restored from the
        rejected one."""
        env = build_env(0)
        pool = TxPool()
        node = ValidatorNode(
            "validator-0",
            env.universe.genesis,
            config=PipelineConfig(worker_lanes=4),
            txpool=pool,
        )
        honest = env.honest.block
        bad = env.injector.corrupt_block(honest, "state_root")
        outcome = node.receive_blocks([honest, bad])
        assert [b.hash for b in outcome.accepted] == [honest.hash]
        # the rejected sibling carries exactly the committed tx set
        assert outcome.restored_txs == 0
        assert len(pool) == 0
