"""Node roles and fork dissemination tests."""

import pytest

from repro.core.occ_wsi import ProposerConfig
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode, ValidatorNode


class TestProposerNode:
    def test_build_block_seals_profile(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        block = sealed.block
        assert block.number == 1
        assert block.header.proposer_id == "alice"
        assert block.profile is not None
        assert len(block.profile) == len(block)
        block.validate_structure()

    def test_build_block_without_profile(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header,
            small_universe.genesis,
            txs,
            include_profile=False,
        )
        assert sealed.block.profile is None

    def test_coinbase_earns_fees(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        node = ProposerNode("alice")
        sealed = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        assert sealed.post_state.account(node.coinbase).balance == \
            sealed.proposal.total_fees
        assert sealed.proposal.total_fees > 0


class TestValidatorNode:
    def test_receive_and_extend_chain(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        sealed = ProposerNode("alice").build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        validator = ValidatorNode("bob", small_universe.genesis)
        outcome = validator.receive_blocks([sealed.block])
        assert outcome.accepted == [sealed.block]
        assert outcome.new_head
        assert validator.chain.head is sealed.block

    def test_rejects_unknown_parent(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        node = ProposerNode("alice")
        sealed1 = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        txs2 = small_generator.generate_block_txs()
        sealed2 = node.build_block(sealed1.block.header, sealed1.post_state, txs2)
        validator = ValidatorNode("bob", small_universe.genesis)
        # deliver only the child: its parent is unknown to bob's chain
        outcome = validator.receive_blocks([sealed2.block])
        assert outcome.rejected == [sealed2.block]

    def test_fork_siblings_both_stored(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(2, seed=4).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        validator = ValidatorNode("bob", small_universe.genesis)
        outcome = validator.receive_blocks(forks.blocks)
        assert len(outcome.accepted) == 2
        assert len(validator.chain.blocks_at_height(1)) == 2
        assert validator.chain.uncle_count() == 1


class TestForkSimulator:
    def test_distinct_blocks_same_height(self, small_universe, small_generator, genesis_chain):
        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(3, seed=1).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        blocks = forks.blocks
        assert len({b.hash for b in blocks}) == 3
        assert {b.number for b in blocks} == {1}
        assert {b.header.parent_hash for b in blocks} == {
            genesis_chain.genesis.header.hash
        }

    def test_all_forks_individually_valid(
        self, small_universe, small_generator, genesis_chain
    ):
        from repro.core.validator import ParallelValidator

        txs = small_generator.generate_block_txs()
        forks = ForkSimulator(3, seed=2).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        validator = ParallelValidator()
        for block in forks.blocks:
            res = validator.validate_block(block, small_universe.genesis)
            assert res.accepted, res.reason

    def test_partial_overlap_produces_smaller_blocks(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        full = ForkSimulator(2, seed=2, pool_overlap=1.0).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        partial = ForkSimulator(2, seed=2, pool_overlap=0.5).propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        assert sum(len(b) for b in partial.blocks) < sum(len(b) for b in full.blocks)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ForkSimulator(0)
        with pytest.raises(ValueError):
            ForkSimulator(2, pool_overlap=0.0)

    def test_proposer_config_propagates(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()
        sim = ForkSimulator(1, proposer_config=ProposerConfig(lanes=2, max_txs=5))
        forks = sim.propose_forks(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        assert len(forks.blocks[0]) == 5
