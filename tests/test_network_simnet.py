"""Whole-network simulation tests."""


from repro.network.simnet import NetworkConfig, NetworkSimulation
from repro.workload.generator import WorkloadConfig


def small_workload():
    return WorkloadConfig(txs_per_block=30, tx_count_jitter=0.0, seed=3)


class TestNetworkSimulation:
    def test_chains_agree_after_run(self, small_universe):
        sim = NetworkSimulation(
            small_universe,
            config=NetworkConfig(rounds=4, n_validators=3, seed=5),
            workload=small_workload(),
        )
        result = sim.run()
        assert result.chains_agree
        assert result.final_height == 4
        assert len(result.rounds) == 4
        assert all(r.accepted >= 1 for r in result.rounds)

    def test_forks_produce_uncles(self, small_universe):
        sim = NetworkSimulation(
            small_universe,
            config=NetworkConfig(rounds=6, fork_probability=1.0, seed=2),
            workload=small_workload(),
        )
        result = sim.run()
        assert result.chains_agree
        assert result.uncle_count == 6  # every round forked
        assert all(len(r.proposer_ids) == 2 for r in result.rounds)

    def test_no_forks_no_uncles(self, small_universe):
        sim = NetworkSimulation(
            small_universe,
            config=NetworkConfig(rounds=3, fork_probability=0.0, seed=2),
            workload=small_workload(),
        )
        result = sim.run()
        assert result.uncle_count == 0
        assert all(len(r.proposer_ids) == 1 for r in result.rounds)

    def test_parallel_tps_beats_serial(self, small_universe):
        sim = NetworkSimulation(
            small_universe,
            config=NetworkConfig(rounds=3, seed=7),
            workload=small_workload(),
        )
        result = sim.run()
        assert result.parallel_tps > result.serial_tps
        assert result.total_txs == 3 * 30

    def test_deterministic(self, small_universe):
        import dataclasses

        r1 = NetworkSimulation(
            dataclasses.replace(small_universe, nonces={}),
            config=NetworkConfig(rounds=3, seed=11),
            workload=small_workload(),
        ).run()
        r2 = NetworkSimulation(
            dataclasses.replace(small_universe, nonces={}),
            config=NetworkConfig(rounds=3, seed=11),
            workload=small_workload(),
        ).run()
        assert r1.final_root_hex == r2.final_root_hex
        assert [x.pipeline_makespan for x in r1.rounds] == [
            x.pipeline_makespan for x in r2.rounds
        ]

    def test_single_proposer_single_validator(self, small_universe):
        sim = NetworkSimulation(
            small_universe,
            config=NetworkConfig(
                n_proposers=1, n_validators=1, rounds=2, fork_probability=0.9, seed=1
            ),
            workload=small_workload(),
        )
        result = sim.run()  # fork probability moot with one proposer
        assert result.chains_agree
        assert result.uncle_count == 0
