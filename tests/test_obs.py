"""Unit tests for the observability layer (tracer, metrics, exporters)."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace_events,
    chrome_trace_json,
    compare,
    flame_summary,
    load_baseline,
    write_baseline,
    write_chrome_trace,
)
from repro.obs.baseline import direction_of, flatten_numbers
from repro.obs.export import CONTROL_TID
from repro.obs.metrics import Counter, Gauge, Histogram


class TestTracer:
    def test_record_and_duration(self):
        tracer = Tracer()
        span = tracer.record("exec", 10.0, 25.0, lane=3, tx="ab")
        assert span.duration == 15.0
        assert span.lane == 3
        assert span.attrs == {"tx": "ab"}
        assert not span.is_instant
        assert len(tracer) == 1

    def test_instant_is_zero_width(self):
        tracer = Tracer()
        span = tracer.instant("abort", 5.0, retries=2)
        assert span.is_instant
        assert span.duration == 0.0

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("bad", 10.0, 5.0)

    def test_scope_parents_children(self):
        tracer = Tracer()
        with tracer.scope("block", 0.0) as block:
            child = tracer.record("exec", 1.0, 2.0)
            with tracer.scope("validate", 2.0) as validate:
                grandchild = tracer.record("apply", 2.0, 3.0)
        assert child.parent_id == block.id
        assert grandchild.parent_id == validate.id
        assert validate.parent_id == block.id
        assert [s.name for s in tracer.children_of(block.id)] == ["exec", "validate"]

    def test_scope_closes_at_latest_child_end(self):
        tracer = Tracer()
        with tracer.scope("outer", 0.0):
            tracer.record("a", 0.0, 4.0)
            tracer.record("b", 1.0, 9.0)
        assert tracer.find("outer")[0].end == 9.0

    def test_scope_explicit_end_wins(self):
        tracer = Tracer()
        scope = tracer.scope("outer", 0.0)
        with scope:
            tracer.record("a", 0.0, 4.0)
            scope.span.end = 100.0
        assert scope.span.end == 100.0

    def test_for_process_stamps_pids(self):
        tracer = Tracer()
        alice = tracer.for_process("alice")
        bob = tracer.for_process("bob")
        a = alice.record("x", 0.0, 1.0)
        b = bob.instant("y", 2.0)
        assert (a.pid, b.pid) == (1, 2)
        assert tracer.processes == {0: "sim", 1: "alice", 2: "bob"}

    def test_ids_are_creation_ordered(self):
        tracer = Tracer()
        spans = [tracer.record(str(i), 0.0, 1.0) for i in range(5)]
        assert [s.id for s in spans] == [0, 1, 2, 3, 4]

    def test_null_tracer_is_free(self):
        null = NullTracer()
        assert not null.enabled
        span = null.record("anything", 0.0, 1.0, lane=5)
        assert span is null.instant("other", 2.0)
        with null.scope("s", 0.0) as inner:
            assert inner is span
        assert len(null) == 0
        assert list(null) == []
        assert null.for_process("node") is null
        assert not NULL_TRACER.enabled


class TestMetrics:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_range(self):
        g = Gauge("x")
        g.set(5)
        g.set(2)
        g.set(9)
        assert (g.value, g.minimum, g.maximum, g.samples) == (9.0, 2.0, 9.0, 3)

    def test_histogram_clamps_like_stats(self):
        h = Histogram("x", (1, 2, 3))
        for v in (0.5, 1.0, 2.0, 2.5, 99.0):
            h.observe(v)
        assert h.counts == [2, 3]
        assert h.count == 5
        assert h.minimum == 0.5 and h.maximum == 99.0

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("x", (1,))
        with pytest.raises(ValueError):
            Histogram("x", (3, 1, 2))

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", (0, 1)) is reg.histogram("h", (0, 1))

    def test_registry_cross_type_collision(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_registry_histogram_edge_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", (0, 1))
        with pytest.raises(ValueError):
            reg.histogram("h", (0, 2))

    def test_snapshot_is_plain_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.depth").set(7)
        reg.histogram("c.us", (0, 10, 20)).observe(15)
        snap = reg.snapshot()
        assert snap["counters"] == {"b.count": 2}
        assert snap["gauges"]["a.depth"]["value"] == 7.0
        assert snap["histograms"]["c.us"]["counts"] == [0, 1]
        json.dumps(snap)  # must serialise without custom encoders

    def test_merge_into_extra(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        extra = {"existing": 1}
        reg.merge_into(extra)
        assert extra["existing"] == 1
        assert extra["metrics"]["counters"] == {"x": 1}


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        node = tracer.for_process("node-a")
        with node.scope("block", 0.0) as block:
            node.record("exec", 0.0, 5.0, lane=0, tx="aa")
            node.record("exec", 0.0, 7.0, lane=1, tx="bb")
            node.instant("abort", 3.0, retries=1)
            block.end = 7.0
        return tracer

    def test_events_have_required_keys(self):
        events = chrome_trace_events(self._traced())
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event, event
        assert {e["ph"] for e in events} == {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e for e in complete)

    def test_metadata_names_processes_and_lanes(self):
        events = chrome_trace_events(self._traced())
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "node-a") in names
        assert ("thread_name", "lane-0") in names
        assert ("thread_name", "control") in names

    def test_unlaned_spans_land_on_control_thread(self):
        events = chrome_trace_events(self._traced())
        block = next(e for e in events if e["name"] == "block")
        assert block["tid"] == CONTROL_TID

    def test_json_is_deterministic(self):
        a = chrome_trace_json(self._traced())
        b = chrome_trace_json(self._traced())
        assert a == b
        doc = json.loads(a)
        assert doc["otherData"]["clock"] == "simulated-us"

    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(self._traced(), str(tmp_path / "t.json"))
        assert json.loads(open(path).read())["traceEvents"]

    def test_flame_summary_aggregates(self):
        out = flame_summary(self._traced())
        assert "block" in out
        assert "exec" in out
        assert "n=     2" in out  # the two exec spans fold into one line
        assert "abort" in out  # instants listed by count

    def test_flame_min_share_prunes(self):
        tracer = Tracer()
        tracer.record("big", 0.0, 100.0)
        tracer.record("tiny", 0.0, 0.5)
        out = flame_summary(tracer, min_share=0.1)
        assert "big" in out and "tiny" not in out


class TestBaselines:
    def test_direction_heuristics(self):
        assert direction_of("mean_speedup") == 1
        assert direction_of("by_threads.16.blockpilot_speedup") == 1
        assert direction_of("parallel_tps") == 1
        assert direction_of("makespan") == -1
        assert direction_of("validator.exec_us") == -1
        assert direction_of("aborts") == -1
        assert direction_of("blocks") == 0

    def test_flatten_numbers(self):
        flat = flatten_numbers(
            {"a": {"b": 1, "name": "skip"}, "list": [2, 3], "ok": True}
        )
        assert flat == {"a.b": 1.0, "list[0]": 2.0, "list[1]": 3.0, "ok": 1.0}

    def test_write_load_roundtrip(self, tmp_path):
        path = write_baseline(
            "unit", {"speedup": 2.0}, config={"lanes": 4}, directory=str(tmp_path)
        )
        doc = load_baseline(path)
        assert doc["name"] == "unit"
        assert doc["headline"]["speedup"] == 2.0
        assert doc["config"]["lanes"] == 4

    def test_load_rejects_non_baseline(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_compare_flags_regression_and_improvement(self):
        old = {"name": "x", "headline": {"speedup": 4.0, "makespan": 100.0}}
        worse = {"name": "x", "headline": {"speedup": 3.0, "makespan": 100.0}}
        better = {"name": "x", "headline": {"speedup": 5.0, "makespan": 80.0}}
        down = compare(old, worse)
        assert not down.ok
        assert down.regressions[0].key == "speedup"
        up = compare(old, better)
        assert up.ok and len(up.improvements) == 2

    def test_compare_respects_tolerance(self):
        old = {"name": "x", "headline": {"speedup": 4.0}}
        slight = {"name": "x", "headline": {"speedup": 3.9}}
        assert compare(old, slight, tolerance=0.05).ok
        assert not compare(old, slight, tolerance=0.01).ok

    def test_compare_direction_override(self):
        old = {"name": "x", "headline": {"widgets": 10.0}}
        new = {"name": "x", "headline": {"widgets": 5.0}}
        assert compare(old, new).ok  # informational by default
        forced = compare(old, new, directions={"widgets": 1})
        assert not forced.ok

    def test_self_compare_always_clean(self, tmp_path):
        path = write_baseline(
            "self", {"speedup": 3.3, "nested": {"exec_us": 12.5}},
            directory=str(tmp_path),
        )
        result = compare(path, path)
        assert result.ok
        assert not result.regressions and not result.improvements
        assert not result.missing_keys and not result.new_keys
