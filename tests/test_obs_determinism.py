"""Same seed, same trace: determinism contracts for the obs layer.

The tracer runs on the simulated clock, so two runs over identical inputs
must export byte-identical Chrome-trace JSON and equal metrics snapshots —
including runs that exercise the PR-1 fault machinery (worker faults,
byzantine corruption), whose failure events must carry the typed
:class:`~repro.faults.errors.FailureReason` as a span attribute.
"""

import dataclasses

import pytest

from repro.common.types import Address
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.core.pipeline import PipelineConfig
from repro.core.proposer import seal_block
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.interpreter import ExecutionContext
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend
from repro.faults.errors import FailureReason
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode, ValidatorNode
from repro.network.simnet import NetworkConfig, NetworkSimulation
from repro.obs import MetricsRegistry, Tracer, chrome_trace_json
from repro.obs.export import chrome_trace_events
from repro.txpool.pool import TxPool


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    ), txs


class TestProposerDeterminism:
    def test_traced_propose_replays_identically(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            node = ProposerNode("alice", tracer=tracer, metrics=metrics)
            node.build_block(
                genesis_chain.genesis.header, small_universe.genesis, txs
            )
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["proposer.executions"] >= len(txs)


class TestValidatorDeterminism:
    def test_traced_validation_replays_identically(self, sealed, small_universe):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8), tracer=tracer, metrics=metrics
            )
            result = validator.validate_block(
                proposal.block, small_universe.genesis
            )
            assert result.accepted
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["validator.blocks_accepted"] == 1


class TestPipelineDeterminism:
    def test_traced_node_pipeline_replays_identically(
        self, sealed, small_universe
    ):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            node = ValidatorNode(
                "val",
                small_universe.genesis,
                config=PipelineConfig(worker_lanes=8),
                tracer=tracer,
                metrics=metrics,
            )
            outcome = node.receive_blocks([proposal.block])
            assert outcome.accepted
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["pipeline.blocks_accepted"] == 1


class TestFaultDeterminism:
    def test_worker_faults_replay_identically_with_typed_spans(
        self, sealed, small_universe
    ):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8, max_parallel_retries=2),
                injector=FaultInjector(
                    FaultConfig(seed=7, worker_fault_rate=0.3)
                ),
                tracer=tracer,
                metrics=metrics,
            )
            result = validator.validate_block(
                proposal.block, small_universe.genesis
            )
            assert result.accepted  # degrades, never corrupts
            return tracer, chrome_trace_json(tracer), metrics.snapshot()

        (tracer_a, json_a, snap_a), (_, json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        faults = tracer_a.find("worker_fault")
        assert faults, "0.3 fault rate must fire on this block"
        for span in faults:
            assert span.attrs["reason"] == FailureReason.WORKER_FAULT.value
        assert snap_a["counters"]["validator.worker_faults"] == len(faults)

    def test_byzantine_rejection_span_carries_failure_reason(
        self, sealed, small_universe
    ):
        proposal, _ = sealed
        corrupted = FaultInjector(FaultConfig(seed=3)).corrupt_block(
            proposal.block, "profile_write_value"
        )

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8), tracer=tracer, metrics=metrics
            )
            result = validator.validate_block(corrupted, small_universe.genesis)
            assert not result.accepted
            assert result.failure.reason is FailureReason.PROFILE_WRITE_MISMATCH
            return tracer, chrome_trace_json(tracer), metrics.snapshot()

        (tracer_a, json_a, snap_a), (_, json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        failures = tracer_a.find("validation_failure")
        assert len(failures) == 1
        assert (
            failures[0].attrs["reason"]
            == FailureReason.PROFILE_WRITE_MISMATCH.value
        )
        assert (
            snap_a["counters"][
                f"validator.failure.{FailureReason.PROFILE_WRITE_MISMATCH.value}"
            ]
            == 1
        )


BACKENDS = (
    ("serial", lambda: SerialBackend()),
    ("thread", lambda: ThreadBackend(2)),
    ("process", lambda: ProcessBackend(2)),
)


def _normalized_trace(tracer):
    """Trace events with wall-clock placement stripped.

    The real-core drivers stamp spans with wall time, which is the ONLY
    legal run-to-run difference; names, ordering, pids/tids and every
    attribute must replay byte-identically."""
    events = []
    for event in chrome_trace_events(tracer):
        event = dict(event)
        event["ts"] = 0
        event.pop("dur", None)
        events.append(event)
    return events


class TestBackendDeterminism:
    """Same seed + same backend => byte-identical decisions (ISSUE 5, S1).

    Extends the sim-clock contracts above to the real-parallelism drivers:
    block contents, sealed header hashes, state roots, RunStats counters
    and the normalized Chrome trace must all replay exactly, on every
    backend."""

    def _ctx(self):
        return ExecutionContext(
            block_number=1,
            timestamp=1_000,
            coinbase=Address(b"\xcc" * 20),
            gas_limit=30_000_000,
        )

    @pytest.mark.parametrize("name,factory", BACKENDS, ids=[n for n, _ in BACKENDS])
    def test_backend_propose_replays_identically(
        self, small_universe, small_generator, genesis_chain, name, factory
    ):
        txs = small_generator.generate_block_txs()
        ctx = self._ctx()

        def run():
            tracer = Tracer()
            pool = TxPool()
            pool.add_many(txs)
            with factory() as backend:
                proposer = OCCWSIProposer(
                    config=ProposerConfig(lanes=4), backend=backend, tracer=tracer
                )
                result = proposer.propose(small_universe.genesis, pool, ctx)
            sealed = seal_block(
                result,
                genesis_chain.genesis.header,
                coinbase=ctx.coinbase,
                timestamp=ctx.timestamp,
                gas_limit=ctx.gas_limit,
            )
            stats = dataclasses.replace(result.stats, makespan=0.0)
            return (
                bytes(sealed.block.hash),
                [c.tx.hash for c in result.committed],
                bytes(result.final_state(coinbase=ctx.coinbase).state_root()),
                stats,
                _normalized_trace(tracer),
            )

        first, second = run(), run()
        assert first[0] == second[0], "sealed block hash must replay"
        assert first[1] == second[1], "committed tx order must replay"
        assert first[2] == second[2], "state root must replay"
        assert first[3] == second[3], "RunStats must replay"
        assert first[4] == second[4], "normalized trace must replay"
        assert first[4], "propose must actually emit spans"

    @pytest.mark.parametrize("name,factory", BACKENDS, ids=[n for n, _ in BACKENDS])
    def test_backend_validate_replays_identically(
        self, sealed, small_universe, name, factory
    ):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            with factory() as backend:
                validator = ParallelValidator(
                    config=ValidatorConfig(lanes=4), backend=backend, tracer=tracer
                )
                result = validator.validate_block(
                    proposal.block, small_universe.genesis
                )
            assert result.accepted, result.reason
            return (
                bytes(result.post_state.state_root()),
                [r.gas_used for r in result.tx_results],
                result.tx_costs,
                _normalized_trace(tracer),
            )

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert first[3] == second[3]


class TestNetworkDeterminism:
    def test_traced_network_run_replays_identically(self, small_universe):
        config = NetworkConfig(
            n_proposers=2,
            n_validators=2,
            rounds=2,
            fork_probability=1.0,
            byzantine_proposers=(1,),
            seed=17,
        )

        def run():
            universe = dataclasses.replace(small_universe, nonces={})
            tracer = Tracer()
            metrics = MetricsRegistry()
            sim = NetworkSimulation(
                universe, config=config, tracer=tracer, metrics=metrics
            )
            sim.run()
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["net.blocks_sent"] > 0
