"""Same seed, same trace: determinism contracts for the obs layer.

The tracer runs on the simulated clock, so two runs over identical inputs
must export byte-identical Chrome-trace JSON and equal metrics snapshots —
including runs that exercise the PR-1 fault machinery (worker faults,
byzantine corruption), whose failure events must carry the typed
:class:`~repro.faults.errors.FailureReason` as a span attribute.
"""

import dataclasses

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.faults.errors import FailureReason
from repro.faults.injector import FaultConfig, FaultInjector
from repro.network.node import ProposerNode, ValidatorNode
from repro.network.simnet import NetworkConfig, NetworkSimulation
from repro.obs import MetricsRegistry, Tracer, chrome_trace_json


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    ), txs


class TestProposerDeterminism:
    def test_traced_propose_replays_identically(
        self, small_universe, small_generator, genesis_chain
    ):
        txs = small_generator.generate_block_txs()

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            node = ProposerNode("alice", tracer=tracer, metrics=metrics)
            node.build_block(
                genesis_chain.genesis.header, small_universe.genesis, txs
            )
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["proposer.executions"] >= len(txs)


class TestValidatorDeterminism:
    def test_traced_validation_replays_identically(self, sealed, small_universe):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8), tracer=tracer, metrics=metrics
            )
            result = validator.validate_block(
                proposal.block, small_universe.genesis
            )
            assert result.accepted
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["validator.blocks_accepted"] == 1


class TestPipelineDeterminism:
    def test_traced_node_pipeline_replays_identically(
        self, sealed, small_universe
    ):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            node = ValidatorNode(
                "val",
                small_universe.genesis,
                config=PipelineConfig(worker_lanes=8),
                tracer=tracer,
                metrics=metrics,
            )
            outcome = node.receive_blocks([proposal.block])
            assert outcome.accepted
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["pipeline.blocks_accepted"] == 1


class TestFaultDeterminism:
    def test_worker_faults_replay_identically_with_typed_spans(
        self, sealed, small_universe
    ):
        proposal, _ = sealed

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8, max_parallel_retries=2),
                injector=FaultInjector(
                    FaultConfig(seed=7, worker_fault_rate=0.3)
                ),
                tracer=tracer,
                metrics=metrics,
            )
            result = validator.validate_block(
                proposal.block, small_universe.genesis
            )
            assert result.accepted  # degrades, never corrupts
            return tracer, chrome_trace_json(tracer), metrics.snapshot()

        (tracer_a, json_a, snap_a), (_, json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        faults = tracer_a.find("worker_fault")
        assert faults, "0.3 fault rate must fire on this block"
        for span in faults:
            assert span.attrs["reason"] == FailureReason.WORKER_FAULT.value
        assert snap_a["counters"]["validator.worker_faults"] == len(faults)

    def test_byzantine_rejection_span_carries_failure_reason(
        self, sealed, small_universe
    ):
        proposal, _ = sealed
        corrupted = FaultInjector(FaultConfig(seed=3)).corrupt_block(
            proposal.block, "profile_write_value"
        )

        def run():
            tracer = Tracer()
            metrics = MetricsRegistry()
            validator = ParallelValidator(
                config=ValidatorConfig(lanes=8), tracer=tracer, metrics=metrics
            )
            result = validator.validate_block(corrupted, small_universe.genesis)
            assert not result.accepted
            assert result.failure.reason is FailureReason.PROFILE_WRITE_MISMATCH
            return tracer, chrome_trace_json(tracer), metrics.snapshot()

        (tracer_a, json_a, snap_a), (_, json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        failures = tracer_a.find("validation_failure")
        assert len(failures) == 1
        assert (
            failures[0].attrs["reason"]
            == FailureReason.PROFILE_WRITE_MISMATCH.value
        )
        assert (
            snap_a["counters"][
                f"validator.failure.{FailureReason.PROFILE_WRITE_MISMATCH.value}"
            ]
            == 1
        )


class TestNetworkDeterminism:
    def test_traced_network_run_replays_identically(self, small_universe):
        config = NetworkConfig(
            n_proposers=2,
            n_validators=2,
            rounds=2,
            fork_probability=1.0,
            byzantine_proposers=(1,),
            seed=17,
        )

        def run():
            universe = dataclasses.replace(small_universe, nonces={})
            tracer = Tracer()
            metrics = MetricsRegistry()
            sim = NetworkSimulation(
                universe, config=config, tracer=tracer, metrics=metrics
            )
            sim.run()
            return chrome_trace_json(tracer), metrics.snapshot()

        (json_a, snap_a), (json_b, snap_b) = run(), run()
        assert json_a == json_b
        assert snap_a == snap_b
        assert snap_a["counters"]["net.blocks_sent"] > 0
