"""The JSONL event log: schema, rotation, degradation, determinism.

The determinism contract under test: with the wall-clock sampler off, the
event stream of a fixed-seed serve run is *byte-identical* across runs
and across the serial | thread | process execution backends — timestamps
are simulated header seconds, and every counted quantity is derived from
the deterministic cost model.
"""

import json
import os
import stat

import pytest

from repro.exec import get_backend
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_EMITTER,
    JsonlEventLog,
    NullEmitter,
    iter_event_files,
    read_events,
)
from repro.store.service import NodeService, ServeConfig


class TestEnvelope:
    def test_records_carry_versioned_envelope(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlEventLog(path) as log:
            log.emit("block_sealed", 12.0, height=1, txs=3)
            log.emit("store_append", 24.0, height=2, bytes=100)
        events = read_events(path)
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["v"] == EVENT_SCHEMA_VERSION for e in events)
        assert events[0]["kind"] == "block_sealed"
        assert events[0]["ts"] == 12.0
        assert events[0]["txs"] == 3

    def test_unknown_kind_is_a_programming_error(self, tmp_path):
        with JsonlEventLog(str(tmp_path / "e.jsonl")) as log:
            with pytest.raises(ValueError, match="unknown event kind"):
                log.emit("block_selaed", 0.0)

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with JsonlEventLog(path) as log:
            log.emit("recovery", 0.0, height=5, replayed=2, healed=0)
        line = open(path, encoding="utf-8").read().strip()
        assert ": " not in line and ", " not in line
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "e.jsonl"
        record = {"v": EVENT_SCHEMA_VERSION + 1, "seq": 0, "ts": 0.0, "kind": "recovery"}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            read_events(str(path))

    def test_wall_field_only_with_wall_clock_sampler(self, tmp_path):
        plain = str(tmp_path / "plain.jsonl")
        walled = str(tmp_path / "wall.jsonl")
        with JsonlEventLog(plain) as log:
            log.emit("serve_start", 0.0, height=0)
        ticks = iter(range(100))
        with JsonlEventLog(walled, wall_clock=lambda: float(next(ticks))) as log:
            log.emit("serve_start", 0.0, height=0)
        assert "wall" not in read_events(plain)[0]
        assert read_events(walled)[0]["wall"] == 0.0


class TestNullEmitter:
    def test_disabled_and_free(self, tmp_path):
        assert NULL_EMITTER.enabled is False
        # no attribute mutation, no I/O, no error on any call
        NULL_EMITTER.emit("block_sealed", 0.0, height=1)
        NULL_EMITTER.flush()
        NULL_EMITTER.close()
        assert isinstance(NULL_EMITTER, NullEmitter)
        assert not list(tmp_path.iterdir())


class TestRotation:
    def test_rotation_shifts_generations_and_keeps_seq(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = JsonlEventLog(path, rotate_bytes=200, max_files=2)
        for height in range(20):
            log.emit("block_sealed", float(height), height=height, txs=1)
        log.close()
        assert log.rotations >= 2
        assert os.path.exists(f"{path}.1")
        # at most max_files rotated generations survive
        assert not os.path.exists(f"{path}.3")
        # seq never resets: reading oldest-first yields a strict prefix run
        seqs = []
        for name in iter_event_files(path, max_files=2):
            seqs.extend(e["seq"] for e in read_events(name))
        assert seqs == sorted(seqs)
        assert seqs[-1] == log.seq - 1
        assert len(seqs) == len(set(seqs))

    def test_events_survive_across_rotation_boundary(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = JsonlEventLog(path, rotate_bytes=150, max_files=4)
        for height in range(12):
            log.emit("store_append", float(height), height=height, bytes=10)
        log.close()
        recovered = []
        for name in iter_event_files(path):
            recovered.extend(read_events(name))
        assert [e["height"] for e in recovered] == list(range(12))


class TestDegradation:
    def test_unwritable_path_degrades_instead_of_raising(self, tmp_path):
        target = tmp_path / "denied"
        target.mkdir()
        os.chmod(target, stat.S_IRUSR | stat.S_IXUSR)
        if os.access(str(target / "x"), os.W_OK) or os.geteuid() == 0:
            pytest.skip("cannot revoke write permission (running as root)")
        log = JsonlEventLog(str(target / "events.jsonl"))
        assert log.failed is True and log.enabled is False
        log.emit("block_sealed", 0.0, height=1)
        assert log.dropped == 1

    def test_write_failure_counts_drops(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        log = JsonlEventLog(path)
        log.emit("serve_start", 0.0, height=0)
        log._fh.close()  # simulate the fd dying under the emitter
        log.emit("serve_stop", 1.0, height=0, produced=0, sealed=False)
        assert log.failed is True
        assert log.dropped == 1
        log.emit("serve_stop", 2.0, height=0, produced=0, sealed=False)
        assert log.dropped == 2
        # the durable prefix is still readable
        assert [e["kind"] for e in read_events(path)] == ["serve_start"]


class TestTornTail:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        with JsonlEventLog(path) as log:
            log.emit("block_sealed", 1.0, height=1, txs=2)
            log.emit("block_sealed", 2.0, height=2, txs=2)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"seq":2,"ts":3.0,"kind":"block_se')  # torn
        events = read_events(path)
        assert [e["height"] for e in events] == [1, 2]
        with pytest.raises(ValueError, match="undecodable"):
            read_events(path, strict=True)

    def test_mid_file_damage_raises_even_lenient(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"broken\n{"v":1,"seq":1,"ts":0.0,"kind":"recovery"}\n')
        with pytest.raises(ValueError, match="undecodable"):
            read_events(str(path))


@pytest.mark.store
class TestCrossBackendDeterminism:
    """Same seed ⇒ byte-identical events.jsonl on every real-core backend."""

    BLOCKS = 4

    def _stream(self, tmp_path, label, backend_name):
        data_dir = tmp_path / label
        backend = None if backend_name == "sim" else get_backend(backend_name, 2)
        try:
            cfg = ServeConfig(
                data_dir=str(data_dir),
                txs_per_block=12,
                max_height=self.BLOCKS,
                snapshot_interval=4,
                fsync=False,
                events=True,
            )
            NodeService(cfg, backend=backend).run(handle_signals=False)
        finally:
            if backend is not None:
                backend.close()
        return (data_dir / "events.jsonl").read_bytes()

    def test_event_streams_byte_identical_across_backends(self, tmp_path):
        """serial | thread | process feed the same cost model, so their
        fixed-seed event streams must agree byte-for-byte (the sim
        backend runs a different abort schedule and pins its own
        trajectory — covered by the rerun test below)."""
        streams = {
            name: self._stream(tmp_path, name, name)
            for name in ("serial", "thread", "process")
        }
        reference = streams["serial"]
        assert reference  # produced something
        for name, stream in streams.items():
            assert stream == reference, f"{name} backend diverged"

    def test_sim_backend_stream_reproducible(self, tmp_path):
        first = self._stream(tmp_path, "sim-a", "sim")
        second = self._stream(tmp_path, "sim-b", "sim")
        assert first and first == second

    def test_all_emitted_kinds_are_registered(self, tmp_path):
        stream = self._stream(tmp_path, "kinds", "sim")
        kinds = {json.loads(line)["kind"] for line in stream.splitlines()}
        assert kinds <= EVENT_KINDS
        assert {"serve_start", "recovery", "block_sealed", "store_append"} <= kinds
