"""Prometheus exposition rendering and the loopback status server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import StatusServer, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloWindows


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("serve.blocks_total").inc(7)
    registry.gauge("serve.height").set(7.0)
    hist = registry.histogram("store.commit_us", (0.0, 10.0, 100.0, 1000.0))
    for value in (5.0, 50.0, 500.0, 5.0):
        hist.observe(value)
    return registry.snapshot()


class TestRenderPrometheus:
    def test_counters_become_total(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_blocks_total_total counter" in text
        assert "repro_serve_blocks_total_total 7" in text

    def test_gauges_pass_through(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_serve_height gauge" in text
        assert "repro_serve_height 7" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(_snapshot())
        lines = [l for l in text.splitlines() if "store_commit_us_bucket" in l]
        # interior edges 10, 100 then +Inf; counts 2, 1, 1 → cumulative 2, 3, 4
        assert lines == [
            'repro_store_commit_us_bucket{le="10"} 2',
            'repro_store_commit_us_bucket{le="100"} 3',
            'repro_store_commit_us_bucket{le="+Inf"} 4',
        ]
        assert "repro_store_commit_us_sum 560" in text
        assert "repro_store_commit_us_count 4" in text

    def test_slo_quantiles_and_totals(self):
        slo = SloWindows(window_s=60.0)
        slo.observe_block(1.0, seal_latency_us=123.0, txs=4, executions=5, aborts=1)
        text = render_prometheus(_snapshot(), slo=slo.snapshot())
        assert "repro_slo_blocks_total 1" in text
        assert 'repro_slo_seal_latency_us{quantile="0.5"} 123' in text
        assert 'repro_slo_seal_latency_us{quantile="0.99"} 123' in text
        assert "repro_slo_abort_rate 0.2" in text

    def test_health_flags(self):
        healthy = render_prometheus({}, health={"healthy": True, "ready": True})
        assert "repro_healthy 1" in healthy and "repro_ready 1" in healthy
        sick = render_prometheus({}, health={"healthy": False, "ready": False})
        assert "repro_healthy 0" in sick and "repro_ready 0" in sick
        assert "repro_up 1" in sick  # the scrape itself proves the process

    def test_every_sample_line_is_well_formed(self):
        slo = SloWindows()
        slo.observe_block(0.0, seal_latency_us=9.0)
        text = render_prometheus(
            _snapshot(), slo=slo.snapshot(), health={"healthy": True}
        )
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # parses as a number
            assert name.startswith("repro_")
            assert " " not in name.replace(" ", "", 0) or "{" in name


class _StubProvider:
    def __init__(self):
        self.healthy = True
        self.ready = True

    def metrics_text(self):
        return "repro_up 1\n"

    def status_json(self):
        return {"schema": 1, "height": 3}

    def health(self):
        return {
            "healthy": self.healthy,
            "ready": self.ready,
            "detail": "ok" if self.healthy else "no block sealed for 99.0s",
        }


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


class TestStatusServer:
    @pytest.fixture()
    def served(self):
        provider = _StubProvider()
        server = StatusServer(provider, port=0)
        host, port = server.start()
        yield provider, f"http://{host}:{port}"
        server.stop()

    def test_binds_ephemeral_loopback_port(self, served):
        _, url = served
        assert url.startswith("http://127.0.0.1:")
        assert not url.endswith(":0")

    def test_metrics_route(self, served):
        _, url = served
        code, body = _get(f"{url}/metrics")
        assert code == 200
        assert body == "repro_up 1\n"

    def test_status_route_is_json(self, served):
        _, url = served
        code, body = _get(f"{url}/status")
        assert code == 200
        assert json.loads(body) == {"height": 3, "schema": 1}

    def test_healthz_flips_with_the_watchdog(self, served):
        provider, url = served
        code, body = _get(f"{url}/healthz")
        assert (code, body) == (200, "ok\n")
        provider.healthy = False
        code, body = _get(f"{url}/healthz")
        assert code == 503
        assert body.startswith("unhealthy: no block sealed")

    def test_readyz(self, served):
        provider, url = served
        assert _get(f"{url}/readyz")[0] == 200
        provider.ready = False
        assert _get(f"{url}/readyz")[0] == 503

    def test_unknown_route_404(self, served):
        _, url = served
        assert _get(f"{url}/nope")[0] == 404

    def test_stop_releases_the_port(self):
        provider = _StubProvider()
        server = StatusServer(provider, port=0)
        host, port = server.start()
        server.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(f"http://{host}:{port}/healthz", timeout=1)
