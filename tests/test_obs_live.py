"""LiveTelemetry: metrics-delta events, counter re-seeding, registry helpers."""

import urllib.request

import pytest

from repro.obs.live import (
    WATCHED_COUNTERS,
    LiveConfig,
    LiveTelemetry,
    MetricsDelta,
)
from repro.obs.metrics import MetricsRegistry, flat_name
from repro.store.service import NodeService, ServeConfig


class TestFlatName:
    def test_positional_parts_verbatim(self):
        assert flat_name("validator.failure", "bad_root") == "validator.failure.bad_root"
        assert flat_name("artifacts", "hits") == "artifacts.hits"

    def test_labels_sorted_key_value(self):
        assert flat_name("store.append", gen=3) == "store.append.gen.3"
        assert (
            flat_name("store.append", zeta=1, alpha=2)
            == "store.append.alpha.2.zeta.1"
        )

    def test_parts_then_labels(self):
        assert flat_name("a", "b", c=1) == "a.b.c.1"

    def test_registry_accepts_labelled_calls(self):
        registry = MetricsRegistry()
        registry.counter("store.compacted_blocks", gen=2).inc(5)
        assert registry.snapshot()["counters"]["store.compacted_blocks.gen.2"] == 5


class TestRegistryReset:
    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", (0.0, 1.0, 2.0))
        counter.inc(3)
        gauge.set(9.0)
        hist.observe(0.5)
        registry.reset()
        # held references stay live — the same objects, zeroed
        assert counter is registry.counter("c") and counter.value == 0
        assert gauge is registry.gauge("g") and gauge.value == 0.0
        assert gauge.samples == 0 and gauge.minimum is None
        assert hist.count == 0 and hist.counts == [0, 0]
        counter.inc()
        assert registry.snapshot()["counters"]["c"] == 1


class TestMetricsDelta:
    def test_delta_reports_movement_once(self):
        registry = MetricsRegistry()
        scanner = MetricsDelta(registry)
        registry.counter("proposer.aborts").inc(4)
        moved = scanner.delta()
        assert moved["proposer.aborts"] == 4
        assert scanner.delta()["proposer.aborts"] == 0

    def test_rebase_swallows_history(self):
        registry = MetricsRegistry()
        scanner = MetricsDelta(registry)
        registry.counter("store.blocks_appended").inc(8)  # recovery replay
        scanner.rebase()
        assert scanner.delta()["store.blocks_appended"] == 0

    def test_watched_set_covers_the_event_sources(self):
        assert {
            "proposer.aborts",
            "pipeline.exec_retries",
            "pipeline.serial_fallbacks",
            "node.proposers_quarantined",
            "store.blocks_appended",
        } <= set(WATCHED_COUNTERS)


class TestLiveTelemetry:
    def test_default_is_null_emitter(self):
        telemetry = LiveTelemetry(MetricsRegistry())
        assert telemetry.emitter.enabled is False
        assert telemetry.server is None

    def test_block_sealed_derives_events_from_counter_motion(self, tmp_path):
        registry = MetricsRegistry()
        telemetry = LiveTelemetry(
            registry, config=LiveConfig(events_path=str(tmp_path / "e.jsonl"))
        )
        registry.counter("proposer.executions").inc(10)
        registry.counter("proposer.aborts").inc(3)
        registry.counter("pipeline.serial_fallbacks").inc(1)
        telemetry.block_sealed(
            height=1, sim_ts=12.0, txs=9, gas_used=1000, seal_latency_us=55.0
        )
        telemetry.close()
        from repro.obs.events import read_events

        events = read_events(str(tmp_path / "e.jsonl"))
        kinds = [e["kind"] for e in events]
        assert kinds == ["block_sealed", "proposal_abort", "serial_fallback"]
        assert events[0]["aborts"] == 3
        assert telemetry.slo.total_aborts == 3
        assert registry.snapshot()["counters"]["serve.blocks_total"] == 1

    def test_seed_totals_reseeds_cumulative_counters(self):
        registry = MetricsRegistry()
        telemetry = LiveTelemetry(registry)
        registry.counter("store.blocks_appended").inc(6)  # recovery replay
        telemetry.seed_totals(6)
        assert registry.snapshot()["counters"]["serve.blocks_total"] == 6
        assert telemetry.slo.total_blocks == 6
        # the replay movement must not surface as fresh events
        telemetry.block_sealed(
            height=7, sim_ts=84.0, txs=1, gas_used=10, seal_latency_us=5.0
        )
        assert telemetry.slo.total_blocks == 7
        assert registry.snapshot()["counters"]["serve.blocks_total"] == 7


@pytest.mark.store
class TestResumedServeExposesCumulativeCounters:
    """Acceptance: a resumed node's /metrics carries chain-cumulative totals."""

    def test_second_session_reports_total_height(self, tmp_path):
        data_dir = str(tmp_path / "node")

        def session(target):
            cfg = ServeConfig(
                data_dir=data_dir,
                txs_per_block=12,
                max_height=target,
                snapshot_interval=4,
                fsync=False,
                events=True,
                status_port=0,
            )
            service = NodeService(cfg)
            report = service.run(handle_signals=False)
            return service, report

        _, first = session(3)
        assert first.blocks_total == 3 and first.produced == 3

        service, second = session(6)
        assert second.produced == 3  # only the new blocks this session
        assert second.blocks_total == 6  # …but totals are cumulative
        assert second.resumed_from == 3
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["serve.blocks_total"] == 6
        assert snapshot["gauges"]["serve.height"]["value"] == 6.0
        assert "blocks_total=6" in second.summary()

    def test_metrics_endpoint_scrapes_mid_run(self, tmp_path):
        """Drive the provider exactly as the HTTP thread does mid-run."""
        cfg = ServeConfig(
            data_dir=str(tmp_path / "node"),
            txs_per_block=12,
            max_height=4,
            snapshot_interval=4,
            fsync=False,
            status_port=0,
        )
        service = NodeService(cfg)
        scrapes = []
        original = NodeService._build_telemetry

        def hooked(self):
            telemetry = original(self)
            real = telemetry.refresh

            def refresh(**kw):
                real(**kw)
                if telemetry.server is not None:
                    url = f"http://127.0.0.1:{telemetry.server.port}"
                    with urllib.request.urlopen(f"{url}/metrics", timeout=5) as r:
                        scrapes.append(r.read().decode())
            telemetry.refresh = refresh
            return telemetry

        NodeService._build_telemetry = hooked
        try:
            report = service.run(handle_signals=False)
        finally:
            NodeService._build_telemetry = original
        assert report.status_url is not None
        assert len(scrapes) >= 4
        assert "repro_serve_blocks_total_total 4" in scrapes[-1]
        assert "repro_healthy 1" in scrapes[-1]
