"""SLO windows, nearest-rank percentiles, and the stall watchdog."""

import pytest

from repro.obs.live import StallWatchdog
from repro.obs.slo import SloWindows, WindowStats, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank_exact(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.50) == 20.0
        assert percentile(samples, 0.95) == 40.0
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 1.0) == 40.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestWindowStats:
    def test_abort_rate_guards_zero_executions(self):
        window = WindowStats(index=0, start_ts=0.0)
        assert window.abort_rate == 0.0
        window.executions, window.aborts = 10, 3
        assert window.abort_rate == pytest.approx(0.3)

    def test_snapshot_carries_percentiles(self):
        window = WindowStats(index=2, start_ts=120.0)
        window.seal_latencies_us.extend([100.0, 300.0, 200.0])
        snap = window.snapshot()
        assert snap["seal_p50_us"] == 200.0
        assert snap["seal_p99_us"] == 300.0
        assert snap["index"] == 2


class TestSloWindows:
    def test_blocks_land_in_their_window(self):
        slo = SloWindows(window_s=60.0, history=4)
        slo.observe_block(10.0, seal_latency_us=100.0, txs=5)
        slo.observe_block(59.0, seal_latency_us=200.0, txs=5)
        slo.observe_block(61.0, seal_latency_us=300.0, txs=5)
        windows = slo.windows()
        assert [w.index for w in windows] == [0, 1]
        assert windows[0].blocks == 2
        assert windows[1].blocks == 1

    def test_history_is_a_ring(self):
        slo = SloWindows(window_s=1.0, history=3)
        for second in range(10):
            slo.observe_block(float(second), seal_latency_us=1.0)
        assert len(slo.windows()) == 3
        assert slo.windows()[-1].index == 9
        # cumulative totals survive eviction
        assert slo.total_blocks == 10

    def test_totals_accumulate(self):
        slo = SloWindows()
        slo.observe_block(
            0.0,
            seal_latency_us=10.0,
            txs=7,
            executions=9,
            aborts=2,
            retries=1,
            fallbacks=1,
            worker_faults=1,
        )
        assert slo.totals() == {
            "blocks": 1,
            "txs": 7,
            "aborts": 2,
            "retries": 1,
            "fallbacks": 1,
            "worker_faults": 1,
        }

    def test_store_writes_and_txpool_depth(self):
        slo = SloWindows(window_s=60.0)
        slo.observe_store_write(5.0, 111.0)
        slo.observe_txpool_depth(6.0, 42)
        current = slo.current
        assert current.store_write_us == [111.0]
        assert current.txpool_depth == 42.0

    def test_snapshot_shape(self):
        slo = SloWindows(window_s=30.0, history=2)
        slo.observe_block(0.0, seal_latency_us=50.0, txs=1)
        snap = slo.snapshot()
        assert snap["window_s"] == 30.0
        assert snap["totals"]["blocks"] == 1
        assert snap["windows"][-1]["seal_p50_us"] == 50.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SloWindows(window_s=0.0)
        with pytest.raises(ValueError):
            SloWindows(history=0)


class TestStallWatchdog:
    def _dog(self, **kwargs):
        clock = {"now": 0.0}
        dog = StallWatchdog(
            interval_s=kwargs.pop("interval_s", 5.0),
            factor=kwargs.pop("factor", 4.0),
            clock=lambda: clock["now"],
        )
        return dog, clock

    def test_healthy_while_beating(self):
        dog, clock = self._dog()
        dog.mark_ready()
        for _ in range(10):
            clock["now"] += 5.0
            dog.beat()
        status = dog.status()
        assert status["healthy"] is True
        assert status["ready"] is True
        assert status["unhealthy_intervals"] == 0

    def test_flips_unhealthy_after_threshold_silence(self):
        dog, clock = self._dog(interval_s=5.0, factor=4.0)
        dog.mark_ready()
        dog.beat()
        clock["now"] += 20.0
        assert dog.status()["healthy"] is True  # exactly at threshold
        clock["now"] += 0.1
        status = dog.status()
        assert status["healthy"] is False
        assert "no block sealed" in status["detail"]

    def test_flips_while_stuck_not_only_after(self):
        """status() recomputes silence — no beat is needed to notice."""
        dog, clock = self._dog(interval_s=1.0, factor=2.0)
        dog.mark_ready()
        dog.beat()
        clock["now"] += 100.0
        assert dog.status()["healthy"] is False
        # recovery: one beat restores health and counts the episode
        dog.beat()
        assert dog.status()["healthy"] is True
        assert dog.unhealthy_intervals == 1

    def test_not_ready_until_marked(self):
        dog, _ = self._dog()
        assert dog.status()["ready"] is False
        dog.mark_ready()
        assert dog.status()["ready"] is True

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            StallWatchdog(interval_s=0.0)
        with pytest.raises(ValueError):
            StallWatchdog(factor=-1.0)
