"""Pipeline behaviour under staggered block arrivals and edge inputs."""

import pytest

from repro.core.pipeline import ValidatorPipeline
from repro.network.dissemination import ForkSimulator
from repro.network.node import ProposerNode, ValidatorNode


@pytest.fixture()
def fork_pair(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    forks = ForkSimulator(2, seed=8).propose_forks(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )
    parent_states = {genesis_chain.genesis.header.hash: small_universe.genesis}
    return forks.blocks, parent_states


class TestArrivals:
    def test_late_arrival_delays_that_block_only(self, fork_pair):
        blocks, parent_states = fork_pair
        pipe = ValidatorPipeline()
        burst = pipe.process_blocks(blocks, parent_states, arrivals=[0.0, 0.0])
        staggered = pipe.process_blocks(
            blocks, parent_states, arrivals=[0.0, 5000.0]
        )
        assert staggered.all_accepted
        t0, t1 = staggered.timings
        assert t0.commit_end == pytest.approx(burst.timings[0].commit_end, rel=0.05)
        assert t1.prep_end >= 5000.0
        assert staggered.makespan > burst.makespan

    def test_arrival_length_mismatch_rejected(self, fork_pair):
        blocks, parent_states = fork_pair
        with pytest.raises(ValueError):
            ValidatorPipeline().process_blocks(blocks, parent_states, arrivals=[0.0])

    def test_widely_spaced_arrivals_approach_serial_sum(self, fork_pair):
        """With arrivals far apart there is no overlap to exploit: the
        pipeline's speedup collapses toward the single-block speedup."""
        blocks, parent_states = fork_pair
        pipe = ValidatorPipeline()
        burst = pipe.process_blocks(blocks, parent_states)
        spaced = pipe.process_blocks(
            blocks, parent_states, arrivals=[0.0, 100_000.0]
        )
        assert spaced.speedup < burst.speedup

    def test_empty_batch(self):
        pipe = ValidatorPipeline()
        res = pipe.process_blocks([], {})
        assert res.results == []
        assert res.makespan == 0.0
        assert res.all_accepted  # vacuously

    def test_empty_receive_on_node(self, small_universe):
        node = ValidatorNode("v", small_universe.genesis)
        outcome = node.receive_blocks([])
        assert outcome.accepted == [] and outcome.rejected == []


class TestMixedHeightsWithArrivals:
    def test_child_arriving_first_still_waits_for_parent(
        self, small_universe, small_generator, genesis_chain
    ):
        node = ProposerNode("alice")
        txs1 = small_generator.generate_block_txs()
        sealed1 = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs1
        )
        txs2 = small_generator.generate_block_txs()
        sealed2 = node.build_block(sealed1.block.header, sealed1.post_state, txs2)

        pipe = ValidatorPipeline()
        # deliver the child "before" the parent
        res = pipe.process_blocks(
            [sealed2.block, sealed1.block],
            {genesis_chain.genesis.header.hash: small_universe.genesis},
            arrivals=[0.0, 50.0],
        )
        assert res.all_accepted
        child_t, parent_t = res.timings
        assert child_t.validate_end >= parent_t.validate_end
        assert child_t.commit_end >= parent_t.commit_end
