"""Property-based fault-injection invariants.

Two properties the robustness layer must hold for *any* corruption and
any seed:

1. **Safety** — a tampered block is rejected and leaves no state behind:
   ``post_state`` is ``None`` and the parent snapshot's root is untouched.
2. **Determinism** — the same seed reproduces the identical fault
   schedule: the failure sequence and every ``RunStats`` fault counter
   are equal across runs.
"""

import pytest

pytestmark = pytest.mark.faults
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.errors import FailureReason
from repro.faults.injector import (
    CORRUPTION_KINDS,
    FaultConfig,
    FaultInjector,
    FaultyChannel,
)
from repro.faults.scenarios import build_env

#: every corruption kind is applicable to the scenario block (24 real txs
#: guarantee entries with reads and writes)
KINDS = st.sampled_from(CORRUPTION_KINDS)
SEEDS = st.integers(0, 10**6)


@pytest.fixture(scope="module")
def env():
    return build_env(0, txs_per_block=16)


@pytest.fixture(scope="module")
def parent_root(env):
    return env.parent_state.state_root()


class TestCorruptionSafety:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kind=KINDS, seed=SEEDS)
    def test_any_corruption_rejected_without_state(
        self, env, parent_root, kind, seed
    ):
        injector = FaultInjector(FaultConfig(seed=seed))
        bad = injector.corrupt_block(env.honest.block, kind)
        result = env.fresh_validator().validate_block(bad, env.parent_state)
        assert not result.accepted, f"{kind} (seed {seed}) was accepted"
        assert result.failure is not None
        assert isinstance(result.failure.reason, FailureReason)
        # rejection leaves nothing behind: no post state, parent untouched
        assert result.post_state is None
        assert env.parent_state.state_root() == parent_root

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kind=KINDS, seed=SEEDS)
    def test_corruption_is_pure(self, env, kind, seed):
        """corrupt_block must never mutate the original block."""
        honest = env.honest.block
        snapshot = (honest.header, honest.transactions, honest.profile)
        FaultInjector(FaultConfig(seed=seed)).corrupt_block(honest, kind)
        assert (honest.header, honest.transactions, honest.profile) == snapshot


class TestDeterminism:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(kind=KINDS, seed=SEEDS)
    def test_same_seed_identical_corruption(self, env, kind, seed):
        a = FaultInjector(FaultConfig(seed=seed)).corrupt_block(env.honest.block, kind)
        b = FaultInjector(FaultConfig(seed=seed)).corrupt_block(env.honest.block, kind)
        assert a.header == b.header
        assert a.transactions == b.transactions
        assert a.profile == b.profile

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=SEEDS, rate=st.floats(0.05, 0.6))
    def test_same_seed_identical_fault_schedule(self, env, seed, rate):
        """Worker-fault runs replay bit-identically: same failure sequence,
        same RunStats fault counters."""

        def run():
            injector = FaultInjector(
                FaultConfig(seed=seed, worker_fault_rate=rate, stall_rate=rate)
            )
            validator = env.fresh_validator(injector=injector)
            return validator.validate_block(env.honest.block, env.parent_state)

        first, second = run(), run()
        assert first.accepted == second.accepted
        assert first.failure == second.failure
        assert first.worker_faults == second.worker_faults
        assert first.exec_attempts == second.exec_attempts
        assert first.used_serial_fallback == second.used_serial_fallback
        if first.stats is not None:
            assert second.stats is not None
            assert first.stats.worker_faults == second.stats.worker_faults
            assert first.stats.exec_retries == second.stats.exec_retries
            assert first.stats.serial_fallbacks == second.stats.serial_fallbacks
            assert first.stats.failures == second.stats.failures
        assert first.tx_costs == second.tx_costs  # stalls charged identically

    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS)
    def test_execution_fault_schedule_is_call_order_free(self, seed):
        """The keyed RNG decides per (block, attempt, tx) — query order and
        repetition never change the answer."""
        injector = FaultInjector(
            FaultConfig(seed=seed, worker_fault_rate=0.3, stall_rate=0.3)
        )
        block_hash = bytes(range(32))
        forward = [injector.execution_fault(block_hash, 0, i) for i in range(20)]
        backward = [
            injector.execution_fault(block_hash, 0, i) for i in reversed(range(20))
        ]
        assert forward == list(reversed(backward))


class TestChannelDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(seed=SEEDS, drop=st.floats(0, 0.5), dup=st.floats(0, 0.5))
    def test_channel_replays_identically(self, seed, drop, dup):
        cfg = FaultConfig(
            seed=seed,
            drop_rate=drop,
            duplicate_rate=dup,
            reorder_rate=0.5,
            max_delay_us=300.0,
        )

        class Msg:
            def __init__(self, h):
                self.hash = bytes([h]) * 32

        def run():
            channel = FaultyChannel(cfg, "validator-0")
            out = []
            for round_no in range(5):
                batch = [Msg(round_no * 3 + i) for i in range(3)]
                out.append(
                    [(m.hash, d) for m, d in channel.deliver(round_no, batch)]
                )
            out.append([(m.hash, d) for m, d in channel.flush()])
            return out, channel.counters()

        assert run() == run()

    @settings(max_examples=8, deadline=None)
    @given(seed=SEEDS)
    def test_dropped_messages_eventually_delivered(self, seed):
        """Retransmission: with flush, every message reaches the endpoint."""
        cfg = FaultConfig(seed=seed, drop_rate=0.6)

        class Msg:
            def __init__(self, h):
                self.hash = bytes([h]) * 32

        channel = FaultyChannel(cfg, "validator-0")
        sent, got = set(), set()
        for round_no in range(6):
            batch = [Msg(round_no * 2 + i) for i in range(2)]
            sent.update(m.hash for m in batch)
            got.update(m.hash for m, _ in channel.deliver(round_no, batch))
        got.update(m.hash for m, _ in channel.flush())
        assert got == sent
