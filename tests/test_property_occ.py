"""Property-based tests of the core concurrency invariants.

Random miniature worlds (few accounts, random payments and counter
contracts, random gas prices) are pushed through the full OCC-WSI →
seal → validate loop; hypothesis shrinks any violating schedule.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.blockchain import Blockchain
from repro.common.types import Address
from repro.core.occ_wsi import OCCWSIProposer, ProposerConfig
from repro.core.proposer import seal_block
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.evm.asm import asm
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

ETHER = 10**18
N_ACCOUNTS = 6
ACCOUNTS = [Address.from_int(0x500 + i) for i in range(N_ACCOUNTS)]
COUNTER = Address.from_int(0x7777)
#: bump(): slot0 += 1 — the purest §2.3 counter conflict
COUNTER_CODE = asm([0, "SLOAD", 1, "ADD", 0, "SSTORE", "STOP"])
CTX = ExecutionContext(block_number=1, timestamp=5)


def base_state():
    alloc = {a: AccountData(balance=100 * ETHER) for a in ACCOUNTS}
    alloc[COUNTER] = AccountData(code=COUNTER_CODE)
    return genesis_snapshot(alloc)


@st.composite
def tx_batches(draw):
    """A random valid batch: per-sender nonce chains, mixed payment/bump."""
    n = draw(st.integers(1, 25))
    nonces = {a: 0 for a in ACCOUNTS}
    txs = []
    for _ in range(n):
        sender = ACCOUNTS[draw(st.integers(0, N_ACCOUNTS - 1))]
        nonce = nonces[sender]
        nonces[sender] += 1
        price = draw(st.integers(1, 50))
        if draw(st.booleans()):
            to = ACCOUNTS[draw(st.integers(0, N_ACCOUNTS - 1))]
            txs.append(
                Transaction(sender, to, draw(st.integers(0, 1000)), b"", 60_000, price, nonce)
            )
        else:
            txs.append(Transaction(sender, COUNTER, 0, b"", 100_000, price, nonce))
    return txs


@st.composite
def batches_and_lanes(draw):
    return draw(tx_batches()), draw(st.integers(1, 8))


class TestOCCWSIProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batches_and_lanes())
    def test_serializable_and_complete(self, data):
        """Every batch fully packs; commit-order serial replay reproduces
        the parallel state; per-sender nonces appear in order."""
        txs, lanes = data
        base = base_state()
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        result = proposer.propose(base, pool, CTX)

        # completeness: everything valid got packed
        assert len(result.committed) == len(txs)
        assert len(pool) == 0

        # per-sender order preserved
        seen = {}
        for c in result.committed:
            expected = seen.get(c.tx.sender, 0)
            assert c.tx.nonce == expected
            seen[c.tx.sender] = expected + 1

        # serializability witness
        parallel_root = result.final_state().state_root()
        db = StateDB(base)
        evm = EVM()
        for c in result.committed:
            evm.apply_transaction(db, c.tx, CTX)
        assert db.commit().state_root() == parallel_root

        # the counter ends exactly at the number of bump transactions —
        # no lost updates despite write-write racing
        bumps = sum(1 for t in txs if t.to == COUNTER)
        final = result.final_state()
        counter_acct = final.account(COUNTER)
        observed = counter_acct.storage.get(0, 0) if counter_acct else 0
        assert observed == bumps

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(batches_and_lanes())
    def test_sealed_block_always_validates(self, data):
        """Any OCC-WSI output, sealed, is accepted by the validator at any
        thread count (determinism across contexts, §3.3)."""
        txs, lanes = data
        base = base_state()
        pool = TxPool()
        pool.add_many(sorted(txs, key=lambda t: t.nonce))
        proposer = OCCWSIProposer(config=ProposerConfig(lanes=lanes))
        result = proposer.propose(base, pool, CTX)
        chain = Blockchain(base)
        sealed = seal_block(
            result,
            chain.genesis.header,
            coinbase=Address.from_int(0xFEE),
            timestamp=5,
            gas_limit=30_000_000,
        )
        validator = ParallelValidator(config=ValidatorConfig(lanes=3))
        res = validator.validate_block(sealed.block, base)
        assert res.accepted, res.reason
        assert res.post_state.state_root() == sealed.block.header.state_root

    @settings(max_examples=20, deadline=None)
    @given(tx_batches())
    def test_lane_count_never_changes_packed_set(self, txs):
        """Different lane counts pick different serializable orders, but the
        packed transaction *set* and the application-level outcome (counter
        value, value transfers) are identical.

        Note: full state roots may legitimately differ across orders —
        SSTORE gas depends on the slot's prior value (20000 to set, 5000 to
        reset), so *fees* are schedule-dependent.  With zero gas prices that
        channel closes and the roots must coincide exactly.
        """
        zero_fee = [dataclasses.replace(t, gas_price=0) for t in txs]
        roots = set()
        packed_sets = []
        counters = set()
        for lanes in (1, 4, 7):
            base = base_state()
            pool = TxPool()
            pool.add_many(sorted(zero_fee, key=lambda t: t.nonce))
            result = OCCWSIProposer(config=ProposerConfig(lanes=lanes)).propose(
                base, pool, CTX
            )
            packed_sets.append({c.tx.hash for c in result.committed})
            final = result.final_state()
            roots.add(final.state_root())
            counter_acct = final.account(COUNTER)
            counters.add(counter_acct.storage.get(0, 0) if counter_acct else 0)
        assert packed_sets[0] == packed_sets[1] == packed_sets[2]
        assert len(counters) == 1
        assert len(roots) == 1
