"""Property-based bounds on schedules and pipeline timing.

These pin the simulation to scheduling theory: any list schedule's
makespan sits between the trivial lower bounds (critical path, total
work / lanes) and the serial upper bound; the validator's phases respect
the same envelope.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import Address
from repro.core.depgraph import build_dependency_graph
from repro.core.scheduler import SCHEDULER_POLICIES, schedule_components
from repro.simcore.lanes import LaneGroup

A = [Address.from_int(0x600 + i) for i in range(10)]


@st.composite
def component_workloads(draw):
    """Random (footprints, durations): components via shared accounts."""
    n = draw(st.integers(1, 40))
    footprints = []
    durations = []
    for _ in range(n):
        account = draw(st.integers(0, 9))
        footprints.append(frozenset({A[account]}))
        durations.append(draw(st.floats(0.5, 50.0)))
    lanes = draw(st.integers(1, 8))
    return footprints, durations, lanes


class TestScheduleBounds:
    @settings(max_examples=60, deadline=None)
    @given(component_workloads())
    def test_list_schedule_envelope(self, data):
        footprints, durations, lanes = data
        gas = [max(1, int(d * 10)) for d in durations]
        graph = build_dependency_graph(footprints, gas)

        total = sum(durations)
        critical = max(
            sum(durations[t] for t in comp) for comp in graph.components
        )

        for policy in SCHEDULER_POLICIES:
            plan = schedule_components(graph, lanes, policy, seed=3)
            lane_times = [
                sum(durations[t] for t in lane_txs) for lane_txs in plan.lane_txs
            ]
            makespan = max(lane_times) if lane_times else 0.0
            # lower bounds: critical path and perfect division
            assert makespan >= critical - 1e-9, policy
            assert makespan >= total / lanes - 1e-9, policy
            # upper bound: never worse than serial
            assert makespan <= total + 1e-9, policy
            # work conservation
            assert sum(lane_times) == pytest.approx(total)

    @settings(max_examples=40, deadline=None)
    @given(component_workloads())
    def test_greedy_lpt_two_approximation(self, data):
        """Graham's bound: LPT makespan <= (4/3 - 1/3m) * OPT, and OPT >=
        max(critical, total/m); check the weaker, always-valid form."""
        footprints, durations, lanes = data
        gas = [max(1, int(d * 10)) for d in durations]
        graph = build_dependency_graph(footprints, gas)
        plan = schedule_components(graph, lanes, "gas_lpt")
        lane_times = [
            sum(durations[t] for t in lane_txs) for lane_txs in plan.lane_txs
        ]
        makespan = max(lane_times)
        total = sum(durations)
        critical = max(
            sum(durations[t] for t in comp) for comp in graph.components
        )
        opt_lower = max(critical, total / lanes)
        # list scheduling is a 2-approximation even with duration-estimate
        # mismatch, because gas here is proportional to duration
        assert makespan <= 2 * opt_lower + 1e-9


class TestLaneGroupInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.1, 20.0), min_size=1, max_size=40),
        st.integers(1, 8),
    )
    def test_run_on_earliest_is_work_conserving(self, durations, lanes):
        group = LaneGroup(lanes)
        for d in durations:
            group.run_on_earliest(d)
        total = sum(durations)
        assert group.total_busy == pytest.approx(total)
        assert group.makespan >= total / lanes - 1e-9
        assert group.makespan <= total + 1e-9
        # greedy list scheduling: no lane idles while work was available,
        # so makespan <= total/lanes + max task (Graham)
        assert group.makespan <= total / lanes + max(durations) + 1e-9
