"""Scenario stream engine: registry, per-shape behaviour, conflict taming.

The scenario-specific claims pinned here:

* ``counter-shared`` / ``counter-partitioned`` carry *identical* traffic
  (same senders, nonces, amounts, calldata) and differ only in which
  token family the transfers hit — so the conflict-graph edge reduction
  measured between them is purely the commutativity win (satellite of
  Garamvölgyi et al.'s semantic conflict-reduction result).
* the burst envelopes actually modulate the mix per height (storm blocks
  are claim/mint-dominated, calm blocks are not);
* MEV bundles are well-formed sandwiches (front/victim/back on one pool,
  searcher nonce chains intact);
* the streaming long-tail generator spans a 1M-account receiver space
  without materialising it — memory stays bounded by the sender set;
* the diurnal cycle visits all of its phases.
"""

import tracemalloc
from itertools import islice

import pytest

from repro.chain.blockchain import Blockchain
from repro.check.oracle import verify_commit_order
from repro.core.occ_wsi import ProposerConfig
from repro.network.node import ProposerNode
from repro.workload.scenarios import (
    LONG_TAIL_ACCOUNT_BASE,
    SCENARIO_REGISTRY,
    CounterTokenStream,
    DayInTheLifeStream,
    LongTailStream,
    MevBundleStream,
    StreamingLongTailGenerator,
    build_mev_bundle,
    get_scenario,
    scenario_names,
    tx_fingerprint,
)
from repro.workload.universe import UniverseConfig, build_universe

pytestmark = pytest.mark.scenarios


class TestRegistry:
    def test_at_least_five_scenarios(self):
        assert len(scenario_names()) >= 5

    def test_specs_have_summaries(self):
        for name, spec in SCENARIO_REGISTRY.items():
            assert spec.name == name
            assert spec.summary

    def test_every_scenario_streams(self):
        for name in scenario_names():
            stream = get_scenario(name, seed=3, txs_per_block=8, compact=True)
            txs = stream.generate_block_txs()
            assert len(txs) >= 8, name
            assert stream.height == 1, name

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="counter-shared"):
            get_scenario("no-such-scenario")

    def test_iter_blocks_is_lazy_and_unbounded(self):
        stream = get_scenario("long-tail", seed=1, txs_per_block=5, compact=True)
        blocks = list(islice(stream.iter_blocks(), 3))
        assert [len(b) for b in blocks] == [5, 5, 5]
        assert stream.height == 3
        assert len(stream.generate_blocks(2)) == 2


class TestCounterStreams:
    """The matched-pair property and the commutativity regression."""

    def streams(self, seed=42, txs=60):
        return (
            get_scenario("counter-shared", seed=seed, txs_per_block=txs, compact=True),
            get_scenario(
                "counter-partitioned", seed=seed, txs_per_block=txs, compact=True
            ),
        )

    def test_variants_carry_identical_traffic(self):
        shared, partitioned = self.streams()
        a = shared.generate_block_txs()
        b = partitioned.generate_block_txs()
        assert [t.sender for t in a] == [t.sender for t in b]
        assert [t.nonce for t in a] == [t.nonce for t in b]
        assert [t.value for t in a] == [t.value for t in b]
        assert [t.gas_price for t in a] == [t.gas_price for t in b]
        assert [t.data for t in a] == [t.data for t in b]
        assert [t.tag for t in a] == [t.tag for t in b]
        # the one allowed difference: which token family the calls target
        diverging = [
            (x.to, y.to) for x, y in zip(a, b) if x.tag == "erc20-counter"
        ]
        assert diverging
        assert all(x != y for x, y in diverging)
        # payments are untouched by the variant switch
        assert all(
            x.to == y.to for x, y in zip(a, b) if x.tag == "payment"
        )

    def test_partitioned_counters_shed_conflict_edges(self):
        """Satellite regression: same traffic, partitioned layout ⇒ a
        strictly smaller conflict graph and fewer OCC aborts."""
        shared, partitioned = self.streams()

        def conflict_shape(stream):
            node = ProposerNode(
                "commut",
                config=ProposerConfig(lanes=8, strict_checks=True),
            )
            chain = Blockchain(stream.universe.genesis)
            sealed = node.build_block(
                chain.genesis.header,
                stream.universe.genesis,
                stream.generate_block_txs(),
            )
            order = verify_commit_order(sealed.proposal)
            assert order.ok, order.summary()
            return (
                sum(order.edge_counts().values()),
                sealed.proposal.stats.aborts,
            )

        shared_edges, shared_aborts = conflict_shape(shared)
        part_edges, part_aborts = conflict_shape(partitioned)
        assert part_edges < shared_edges, (part_edges, shared_edges)
        assert part_aborts <= shared_aborts, (part_aborts, shared_aborts)

    def test_requires_counter_token_family(self):
        universe = build_universe(
            UniverseConfig(n_eoas=6, n_tokens=1, n_amms=0, n_nfts=0, n_airdrops=0)
        )
        with pytest.raises(ValueError, match="counter-token"):
            CounterTokenStream(universe, partitioned=True)


class TestBurstStreams:
    def tag_fraction(self, txs, tag):
        return sum(1 for t in txs if t.tag == tag) / len(txs)

    @pytest.mark.parametrize(
        "name,tag", [("airdrop-storm", "airdrop"), ("nft-mint-rush", "nft")]
    )
    def test_storm_and_calm_phases(self, name, tag):
        stream = get_scenario(name, seed=11, txs_per_block=48, compact=True)
        blocks = stream.generate_blocks(5)
        # period 8, burst 3: heights 0-2 storm, heights 3-4 calm
        for storm in blocks[:3]:
            assert self.tag_fraction(storm, tag) > 0.5
        for calm in blocks[3:]:
            assert self.tag_fraction(calm, tag) < 0.3

    def test_storm_returns_on_next_period(self):
        stream = get_scenario("airdrop-storm", seed=11, txs_per_block=48, compact=True)
        blocks = stream.generate_blocks(9)
        assert self.tag_fraction(blocks[8], "airdrop") > 0.5  # height 8 ≡ 0


class TestMevBundles:
    def test_bundles_are_sandwiches(self):
        stream = get_scenario("mev-bundles", seed=5, txs_per_block=20, compact=True)
        assert isinstance(stream, MevBundleStream)
        txs = stream.generate_block_txs()
        # organic traffic first, then bundles_per_block=2 appended bundles
        assert len(txs) == 20 + 2 * 3
        bundles = [txs[20:23], txs[23:26]]
        for front, victim, back in bundles:
            assert (front.tag, victim.tag, back.tag) == (
                "mev-front",
                "mev-victim",
                "mev-back",
            )
            # one pool chains the sandwich; the searcher brackets the victim
            assert front.to == victim.to == back.to
            assert front.sender == back.sender
            assert back.nonce == front.nonce + 1
            assert front.gas_price >= 150 and back.gas_price >= 150

    def test_searchers_rotate_and_chain_nonces(self):
        stream = get_scenario("mev-bundles", seed=5, txs_per_block=10, compact=True)
        seen = {}
        for txs in stream.generate_blocks(4):
            for t in txs:
                if t.tag in ("mev-front", "mev-back"):
                    seen.setdefault(t.sender, []).append(t.nonce)
        assert len(seen) >= 2  # round-robin actually rotates
        for nonces in seen.values():
            assert nonces == sorted(nonces)

    def test_bundle_needs_an_amm(self):
        universe = build_universe(
            UniverseConfig(n_eoas=6, n_tokens=1, n_amms=0, n_nfts=0, n_airdrops=0)
        )
        import random

        with pytest.raises(ValueError, match="AMM"):
            build_mev_bundle(universe, random.Random(0), universe.eoas[0])


class TestLongTail:
    def test_receivers_come_from_the_synthetic_tail(self):
        stream = get_scenario("long-tail", seed=9, txs_per_block=50, compact=True)
        assert isinstance(stream, LongTailStream)
        txs = stream.generate_block_txs()
        assert all(t.tag == "payment" for t in txs)
        ranks = [t.to.to_int() - LONG_TAIL_ACCOUNT_BASE for t in txs]
        assert all(0 <= r < 1_000_000 for r in ranks)
        # Zipf head *and* tail are both visited
        assert min(ranks) < 100
        assert max(ranks) > 10_000

    def test_universe_size_must_be_positive(self):
        universe = build_universe(
            UniverseConfig(n_eoas=4, n_tokens=0, n_amms=0, n_nfts=0, n_airdrops=0)
        )
        with pytest.raises(ValueError, match="universe_size"):
            StreamingLongTailGenerator(universe, universe_size=0)

    def test_million_account_stream_is_bounded_memory(self):
        """The acceptance bar: a 1M-account universe never materialises;
        streaming thousands of payments stays within a few MB and the
        only per-account state is the (small) sender nonce map."""
        universe = build_universe(
            UniverseConfig(n_eoas=24, n_tokens=0, n_amms=0, n_nfts=0, n_airdrops=0)
        )
        stream = LongTailStream(universe, universe_size=1_000_000)
        tracemalloc.start()
        try:
            for txs in stream.iter_blocks(5):
                assert len(txs) > 0
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 8 * 1024 * 1024, f"peak {peak} bytes"
        assert len(universe.nonces) <= len(universe.eoas)


class TestDayInTheLife:
    def test_cycle_visits_every_phase(self):
        stream = get_scenario("day-in-the-life", seed=13, txs_per_block=30, compact=True)
        assert isinstance(stream, DayInTheLifeStream)
        blocks = stream.generate_blocks(DayInTheLifeStream.CYCLE)

        def fraction(height, tag):
            txs = blocks[height]
            return sum(1 for t in txs if t.tag == tag) / len(txs)

        for hour in DayInTheLifeStream.STORM_HOURS:
            assert fraction(hour, "airdrop") > 0.5, hour
        for hour in DayInTheLifeStream.MINT_HOURS:
            assert fraction(hour, "nft") > 0.5, hour
        for hour in DayInTheLifeStream.MEV_HOURS:
            tags = {t.tag for t in blocks[hour]}
            assert {"mev-front", "mev-victim", "mev-back"} <= tags, hour
        # organic hours: no bundles, no storm dominance
        assert fraction(0, "airdrop") < 0.3
        assert not any(t.tag.startswith("mev-") for t in blocks[0])

    def test_era_drift_advances_across_days(self):
        stream = get_scenario("day-in-the-life", seed=13, compact=True)
        early = stream.config_at(0)
        late = stream.config_at(9 * DayInTheLifeStream.CYCLE)
        assert late.w_payment < early.w_payment
        assert late.hotspot_intensity > early.hotspot_intensity


class TestDeterminism:
    """Cheap spot-check; the hypothesis suite sweeps seeds properly."""

    def test_same_seed_same_stream(self):
        for name in scenario_names():
            runs = []
            for _ in range(2):
                stream = get_scenario(name, seed=21, txs_per_block=12, compact=True)
                runs.append(
                    [tx_fingerprint(t) for b in stream.generate_blocks(3) for t in b]
                )
            assert runs[0] == runs[1], name

    def test_different_seeds_diverge(self):
        def fingerprints(seed):
            stream = get_scenario(
                "mev-bundles", seed=seed, txs_per_block=12, compact=True
            )
            return [tx_fingerprint(t) for t in stream.generate_block_txs()]

        assert fingerprints(1) != fingerprints(2)
