"""Scenario conformance matrix: every scenario × every proposer strategy
× every real execution backend.

For each cell the proposer seals a block from the same pending set, and:

* the serial-backend seal is the reference: its schedule is proved
  conflict-serializable (:func:`verify_schedule` on the shipped profile,
  :func:`verify_commit_order` on the live proposal), the differential
  oracle replays it serially (:func:`diff_proposal`), and the parallel
  validator accepts it;
* the thread- and process-backend seals must be **bit-identical** to the
  reference — same header hash (which commits to the state, transaction
  and receipt roots), same transaction order, same execution profile.

This is the cross-cutting guarantee the scenario engine rides on: no
traffic shape, however adversarial, may make the engines' output depend
on the physical execution substrate.
"""

import pytest

from repro.chain.blockchain import Blockchain
from repro.check.differential import diff_proposal
from repro.check.oracle import verify_commit_order, verify_schedule
from repro.core.occ_wsi import ProposerConfig
from repro.core.strategies import STRATEGY_CHOICES
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.exec import ProcessBackend, SerialBackend, ThreadBackend
from repro.network.node import ProposerNode
from repro.workload.scenarios import get_scenario, scenario_names

pytestmark = pytest.mark.scenarios

#: serial first — it is the reference the others must match bit-for-bit
BACKEND_FACTORIES = (
    ("serial", lambda: SerialBackend()),
    ("thread", lambda: ThreadBackend(2)),
    ("process", lambda: ProcessBackend(2)),
)


def seal_with(strategy, backend, parent_header, parent_state, txs):
    node = ProposerNode(
        "matrix",
        config=ProposerConfig(lanes=4, strategy=strategy, strict_checks=True),
        backend=backend,
    )
    return node.build_block(parent_header, parent_state, txs)


def identity(sealed):
    """Everything "bit-identical" means for a sealed block."""
    block = sealed.block
    return (
        bytes(block.header.hash),
        tuple(bytes(tx.hash) for tx in block.transactions),
        tuple(
            (bytes(e.tx_hash), e.gas_used, e.success, e.rw)
            for e in block.profile.entries
        ),
    )


@pytest.mark.parametrize("scenario", scenario_names())
def test_conformance_matrix(scenario):
    stream = get_scenario(scenario, seed=7, txs_per_block=18, compact=True)
    txs = stream.generate_block_txs()
    universe = stream.universe
    parent_header = Blockchain(universe.genesis).genesis.header
    validator = ParallelValidator(config=ValidatorConfig(lanes=4))

    for strategy in STRATEGY_CHOICES:
        reference = None
        for backend_name, factory in BACKEND_FACTORIES:
            with factory() as backend:
                sealed = seal_with(
                    strategy, backend, parent_header, universe.genesis, txs
                )
            if reference is None:
                reference = identity(sealed)
                # the reference runs the full conformance chain once
                schedule = verify_schedule(sealed.block, strategy=strategy)
                assert schedule.ok, (scenario, strategy, schedule.summary())
                order = verify_commit_order(sealed.proposal)
                assert order.ok, (scenario, strategy, order.summary())
                diff = diff_proposal(sealed, universe.genesis)
                assert diff.ok, (scenario, strategy, diff.summary())
                verdict = validator.validate_block(sealed.block, universe.genesis)
                assert verdict.accepted, (scenario, strategy, verdict.reason)
            else:
                assert identity(sealed) == reference, (
                    scenario,
                    strategy,
                    backend_name,
                )
