"""Property suite over every registered scenario (hypothesis-driven).

Invariants that must hold for *any* scenario and *any* seed:

* **streaming determinism** — same scenario + same seed ⇒ byte-identical
  transaction stream (:func:`tx_fingerprint` sequences match exactly);
* **nonce monotonicity** — each sender's nonces, in stream order across
  block boundaries, count 0, 1, 2, … with no gaps or repeats (every tx
  is valid at generation order);
* **gas sanity** — positive gas prices bounded by the highest bid any
  scenario places (MEV bundles bid up to 400, above the organic
  ``gas_price_max``), and gas limits within the deploy ceiling;
* **no duplicate transactions** — fingerprints (and hashes) are unique,
  since (sender, nonce) pairs never repeat.
"""

from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workload.scenarios import get_scenario, scenario_names, tx_fingerprint

pytestmark = pytest.mark.scenarios

#: the widest bids any scenario places (MEV bundles: 150–400; organic
#: traffic: gas_price_min..gas_price_max ⊆ [10, 200])
GAS_PRICE_CEILING = 400
#: the deploy path's gas limit is the global ceiling
GAS_LIMIT_CEILING = 3_000_000

SCENARIO = st.sampled_from(scenario_names())
SEED = st.integers(min_value=0, max_value=2**16)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sample_blocks(name, seed, *, n_blocks=3, txs_per_block=10):
    stream = get_scenario(name, seed=seed, txs_per_block=txs_per_block, compact=True)
    return stream.generate_blocks(n_blocks)


@given(name=SCENARIO, seed=SEED)
@settings(max_examples=20, **COMMON)
def test_same_seed_is_byte_identical(name, seed):
    first, second = (
        [tx_fingerprint(t) for block in sample_blocks(name, seed) for t in block]
        for _ in range(2)
    )
    assert first == second


@given(name=SCENARIO, seed=SEED)
@settings(max_examples=20, **COMMON)
def test_nonces_are_gapless_per_sender(name, seed):
    nonces = defaultdict(list)
    for block in sample_blocks(name, seed):
        for tx in block:
            nonces[tx.sender].append(tx.nonce)
    assert nonces
    for sender, seen in nonces.items():
        assert seen == list(range(len(seen))), (sender, seen)


@given(name=SCENARIO, seed=SEED)
@settings(max_examples=20, **COMMON)
def test_gas_bounds_and_uniqueness(name, seed):
    txs = [t for block in sample_blocks(name, seed) for t in block]
    for tx in txs:
        assert 0 < tx.gas_price <= GAS_PRICE_CEILING, tx.tag
        assert 0 < tx.gas_limit <= GAS_LIMIT_CEILING, tx.tag
        assert tx.value >= 0
    fingerprints = [tx_fingerprint(t) for t in txs]
    assert len(set(fingerprints)) == len(fingerprints)
    hashes = [bytes(t.hash) for t in txs]
    assert len(set(hashes)) == len(hashes)


@given(seed=SEED, txs_per_block=st.integers(min_value=1, max_value=40))
@settings(max_examples=15, **COMMON)
def test_counter_variants_stay_matched(seed, txs_per_block):
    """The matched-pair contract holds for any seed and block size, not
    just the bench calibration: everything but the token address family
    is identical between the shared and partitioned streams."""

    def strip_to(tx):
        fp = tx_fingerprint(tx)
        return fp[:20] + fp[40:]  # drop the 20-byte ``to`` field

    shared = get_scenario(
        "counter-shared", seed=seed, txs_per_block=txs_per_block, compact=True
    )
    partitioned = get_scenario(
        "counter-partitioned", seed=seed, txs_per_block=txs_per_block, compact=True
    )
    a = [t for b in shared.generate_blocks(2) for t in b]
    b = [t for b_ in partitioned.generate_blocks(2) for t in b_]
    assert [strip_to(t) for t in a] == [strip_to(t) for t in b]
