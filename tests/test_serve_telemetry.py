"""Live telemetry against the real serve subprocess.

Two acceptance criteria from the observability PR land here:

* a running ``repro serve --status-port 0`` exposes valid Prometheus
  text, JSON status and a healthz probe over loopback, and a SIGTERM
  still seals cleanly;
* a serve killed mid-run (with a torn telemetry tail on disk) resumes
  without telemetry interfering, and the resumed session's counters are
  chain-cumulative, not session-local.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

pytestmark = pytest.mark.store

REPO_ROOT = Path(__file__).resolve().parents[1]
URL_RE = re.compile(r"status endpoint listening on (http://[\d.]+:\d+)")


def _env(crash=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_STORE_CRASH", None)
    if crash:
        env["REPRO_STORE_CRASH"] = crash
    return env


def _serve_args(data_dir, *extra):
    return [
        sys.executable,
        "-m",
        "repro",
        "--txs-per-block",
        "12",
        "serve",
        "--data-dir",
        str(data_dir),
        "--snapshot-interval",
        "4",
        "--no-fsync",
        *extra,
    ]


def _run(data_dir, *extra, crash=None, check=True):
    proc = subprocess.run(
        _serve_args(data_dir, *extra),
        env=_env(crash),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"serve failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def _get(url, timeout=5):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


class TestServeStatusEndpointSmoke:
    @pytest.fixture()
    def running(self, tmp_path):
        """An unbounded serve with events + ephemeral status port."""
        proc = subprocess.Popen(
            _serve_args(tmp_path / "node", "--events", "--status-port", "0"),
            env=_env(),
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        url = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            match = URL_RE.search(line or "")
            if match:
                url = match.group(1)
                break
            if proc.poll() is not None:
                break
        if url is None:
            proc.kill()
            out, err = proc.communicate(timeout=30)
            raise AssertionError(f"no status URL announced:\n{out}\n{err}")
        try:
            yield proc, url
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

    def test_scrape_then_sigterm_seals(self, running, tmp_path):
        proc, url = running

        code, body = _get(f"{url}/healthz", timeout=10)
        assert (code, body) == (200, "ok\n")

        code, metrics = _get(f"{url}/metrics")
        assert code == 200
        # exposition validity: every non-comment line is `name[{labels}] value`
        for line in metrics.strip().splitlines():
            if line.startswith("# TYPE "):
                continue
            assert re.fullmatch(
                r'[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9.+eEInf]+', line
            ), f"malformed exposition line: {line!r}"
        assert "repro_up 1" in metrics
        assert "repro_serve_blocks_total_total" in metrics

        code, status = _get(f"{url}/status")
        assert code == 200
        doc = json.loads(status)
        assert doc["schema"] == 1
        assert doc["health"]["ready"] is True
        assert doc["events"]["enabled"] is True

        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "sealed=True" in stdout
        assert "blocks_total=" in stdout

    def test_status_cli_renders_dashboard(self, running):
        _, url = running
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "status", "--url", url],
            env=_env(),
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "health healthy" in proc.stdout
        assert "totals blocks=" in proc.stdout


class TestKillAndResumeWithTelemetry:
    def test_torn_telemetry_tail_never_blocks_recovery(self, tmp_path):
        data_dir = tmp_path / "node"
        proc = _run(
            data_dir,
            "--blocks",
            "8",
            "--events",
            crash="after_append:3",
            check=False,
        )
        assert proc.returncode == 137, proc.stderr

        events_path = data_dir / "events.jsonl"
        assert events_path.exists()
        # make the crash worse than reality: tear the final event mid-line
        torn = events_path.read_bytes().rstrip(b"\n")[:-7]
        events_path.write_bytes(torn)

        final = _run(data_dir, "--blocks", "8", "--events")
        assert "sealed=True" in final.stdout
        # cumulative counters re-seeded from the recovered height
        assert "blocks_total=8" in final.stdout
        with open(data_dir / "manifest.json", encoding="utf-8") as fh:
            assert json.load(fh)["height"] == 8

        # the healed event file parses end to end, and the resumed
        # session's records narrate the post-recovery suffix
        from repro.obs.events import read_events

        events = read_events(str(events_path), strict=True)
        kinds = [e["kind"] for e in events]
        assert kinds.count("serve_start") == 2
        resumed_start = max(
            i for i, e in enumerate(events) if e["kind"] == "serve_start"
        )
        assert events[resumed_start]["resumed"] is True
        sealed_after = [
            e for e in events[resumed_start:] if e["kind"] == "block_sealed"
        ]
        assert sealed_after and sealed_after[-1]["height"] == 8
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)  # monotone across the kill

    def test_event_stream_matches_uninterrupted_run_modulo_lifecycle(
        self, tmp_path
    ):
        """Killed+resumed narration agrees with one clean run per height.

        Telemetry is best-effort and trails the store: the crash lands
        *inside* the commit path, so the crash-height block is durable but
        its ``block_sealed`` event may never have been written.  Every
        event that did get written must match the clean run exactly, and
        only the crash height may be missing.
        """
        from repro.obs.events import read_events

        clean_dir = tmp_path / "clean"
        _run(clean_dir, "--blocks", "6", "--events")
        crashed_dir = tmp_path / "crashed"
        proc = _run(
            crashed_dir,
            "--blocks",
            "6",
            "--events",
            crash="after_manifest:3",
            check=False,
        )
        assert proc.returncode == 137
        _run(crashed_dir, "--blocks", "6", "--events")

        def narration(path):
            return {
                e["height"]: {k: v for k, v in e.items() if k != "seq"}
                for e in read_events(str(path / "events.jsonl"))
                if e["kind"] == "block_sealed"
            }

        clean = narration(clean_dir)
        crashed = narration(crashed_dir)
        assert set(clean) == set(range(1, 7))
        missing = set(clean) - set(crashed)
        assert missing <= {3}  # only the crash height may have been eaten
        for height, event in crashed.items():
            assert event == clean[height], f"height {height} diverged"
