"""Tests for the cost model and speedup statistics."""

import pytest

from repro.simcore.costmodel import CostModel, TraceCosts
from repro.simcore.stats import RunStats, histogram, summarize_speedups


class TestCostModel:
    def test_storage_dominates(self):
        model = CostModel()
        storage_heavy = TraceCosts({"storage_read": 10, "storage_write": 10})
        compute_heavy = TraceCosts({"base": 100, "arith": 50})
        assert model.execution_cost(storage_heavy) > model.execution_cost(
            compute_heavy
        )

    def test_tx_cost_includes_overhead(self):
        model = CostModel()
        trace = TraceCosts({"base": 1})
        assert model.tx_cost(trace) == pytest.approx(
            model.tx_overhead + model.execution_cost(trace)
        )

    def test_unknown_category_costs_nothing(self):
        model = CostModel()
        assert model.execution_cost(TraceCosts({"mystery": 1000})) == 0.0

    def test_with_overrides_weights_merge(self):
        model = CostModel().with_overrides(weights={"storage_read": 100.0})
        assert model.weights["storage_read"] == 100.0
        assert model.weights["base"] == CostModel().weights["base"]

    def test_with_overrides_scalar(self):
        model = CostModel().with_overrides(tx_overhead=0.0)
        assert model.tx_overhead == 0.0
        assert CostModel().tx_overhead != 0.0  # original untouched

    def test_trace_merge(self):
        a = TraceCosts({"base": 1, "sha3": 2}, gas_used=100)
        b = TraceCosts({"base": 3}, gas_used=50)
        merged = a.merged(b)
        assert merged.counts == {"base": 4, "sha3": 2}
        assert merged.gas_used == 150

    def test_empty_trace_zero_cost(self):
        assert CostModel().execution_cost(TraceCosts({})) == 0.0


class TestRunStats:
    def test_utilization(self):
        stats = RunStats(makespan=10.0, total_work=40.0, lanes=8)
        assert stats.utilization == 0.5

    def test_speedup_over_stats(self):
        serial = RunStats(makespan=100.0, total_work=100.0, lanes=1)
        parallel = RunStats(makespan=25.0, total_work=100.0, lanes=8)
        assert parallel.speedup_over(serial) == 4.0

    def test_speedup_over_float(self):
        parallel = RunStats(makespan=20.0, total_work=100.0, lanes=8)
        assert parallel.speedup_over(60.0) == 3.0

    def test_zero_makespan_rejected(self):
        stats = RunStats(makespan=0.0, total_work=0.0, lanes=1)
        with pytest.raises(ValueError):
            stats.speedup_over(10.0)


class TestSummaries:
    def test_summarize(self):
        s = summarize_speedups([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.accelerated_fraction == 0.75  # 1.0 is not > 1

    def test_single_sample(self):
        s = summarize_speedups([2.0])
        assert s.p10 == s.p90 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_speedups([])

    def test_histogram_buckets(self):
        counts = histogram([0.5, 1.5, 2.5, 3.5, 10.0], [1, 2, 3, 4])
        # 0.5 clamps into the first bucket; 10.0 clamps into the last
        assert counts == [2, 1, 2]
        assert sum(counts) == 5

    def test_histogram_needs_two_edges(self):
        with pytest.raises(ValueError):
            histogram([1.0], [1])

    def test_histogram_value_on_interior_edge(self):
        # half-open buckets: an interior edge belongs to the bucket it opens
        assert histogram([2.0], [1, 2, 3]) == [0, 1]
        assert histogram([1.0, 2.0, 2.0, 3.0], [1, 2, 3, 4]) == [1, 2, 1]

    def test_histogram_all_below_first_edge(self):
        assert histogram([-5.0, 0.0, 0.999], [1, 2, 3]) == [3, 0]

    def test_histogram_all_at_or_above_last_edge(self):
        # the last edge itself is already out of the half-open range and
        # clamps into the final bucket, like anything above it
        assert histogram([3.0, 3.5, 100.0], [1, 2, 3]) == [0, 3]

    def test_histogram_empty_values(self):
        assert histogram([], [1, 2, 3]) == [0, 0]

    def test_histogram_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram([1.0], [3, 2, 1])
        with pytest.raises(ValueError):
            histogram([1.0], [1, 1, 2])  # duplicate edge: empty bucket

    def test_histogram_matches_linear_reference(self):
        # the bisect implementation must agree with the spec'd semantics
        # on a dense sample sweep, including both clamps
        edges = [0.0, 1.0, 2.5, 4.0, 8.0]

        def reference(values):
            counts = [0] * (len(edges) - 1)
            for v in values:
                if v < edges[0]:
                    counts[0] += 1
                    continue
                for i in range(len(edges) - 1):
                    if edges[i] <= v < edges[i + 1]:
                        counts[i] += 1
                        break
                else:
                    counts[-1] += 1
            return counts

        values = [x / 4.0 for x in range(-8, 48)]
        assert histogram(values, edges) == reference(values)
