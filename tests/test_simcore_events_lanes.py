"""Unit tests for the discrete-event queue and simulated lanes."""

import pytest

from repro.simcore.events import EventQueue
from repro.simcore.lanes import Lane, LaneGroup


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "c", "b"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        q.push(1.0, "third")
        assert [q.pop().payload for _ in range(3)] == ["first", "second", "third"]

    def test_incomparable_payloads_ok(self):
        q = EventQueue()
        q.push(1.0, {"x": 1})
        q.push(1.0, {"y": 2})
        assert q.pop().payload == {"x": 1}

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, None)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), None)

    def test_drain_merges_new_events(self):
        q = EventQueue()
        q.push(1.0, "a")
        seen = []
        for ev in q.drain():
            seen.append(ev.payload)
            if ev.payload == "a":
                q.push(0.5, "late-but-after-a")  # already past 1.0? no: merged
                q.push(2.0, "b")
        # the 0.5 event was pushed after time 1.0 was popped but still sorts
        # by its own time among *remaining* events
        assert seen == ["a", "late-but-after-a", "b"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, None)
        assert q and len(q) == 1


class TestLane:
    def test_sequential_tasks_accumulate(self):
        lane = Lane(0)
        s1, e1 = lane.run(10.0)
        s2, e2 = lane.run(5.0)
        assert (s1, e1) == (0.0, 10.0)
        assert (s2, e2) == (10.0, 15.0)
        assert lane.busy_time == 15.0
        assert lane.tasks_run == 2

    def test_not_before_delays_start(self):
        lane = Lane(0)
        start, end = lane.run(3.0, not_before=7.0)
        assert (start, end) == (7.0, 10.0)

    def test_context_switch_penalty(self):
        lane = Lane(0)
        lane.run(1.0, context="blockA", switch_penalty=2.0)
        start, _ = lane.run(1.0, context="blockB", switch_penalty=2.0)
        assert start == 3.0  # 1.0 end + 2.0 penalty
        assert lane.context_switches == 1

    def test_same_context_no_penalty(self):
        lane = Lane(0)
        lane.run(1.0, context="blk", switch_penalty=2.0)
        start, _ = lane.run(1.0, context="blk", switch_penalty=2.0)
        assert start == 1.0
        assert lane.context_switches == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Lane(0).run(-1.0)


class TestLaneGroup:
    def test_earliest_picks_least_loaded(self):
        group = LaneGroup(2)
        group.lanes[0].run(10.0)
        assert group.earliest() is group.lanes[1]

    def test_earliest_tie_breaks_by_index(self):
        group = LaneGroup(3)
        assert group.earliest() is group.lanes[0]

    def test_run_on_earliest_balances(self):
        group = LaneGroup(2)
        group.run_on_earliest(4.0)
        group.run_on_earliest(4.0)
        group.run_on_earliest(4.0)
        assert group.makespan == 8.0
        assert group.total_busy == 12.0

    def test_utilization(self):
        group = LaneGroup(2)
        group.run_on_earliest(4.0)
        group.run_on_earliest(4.0)
        assert group.utilization() == 1.0

    def test_context_affinity_prefers_same_context(self):
        group = LaneGroup(2)
        group.run_on_earliest(1.0, context="A", switch_penalty=5.0)
        group.run_on_earliest(1.0, context="B", switch_penalty=5.0)
        # both lanes free at t=1; the next A-task should go to lane 0
        lane, start, end = group.run_on_earliest(1.0, context="A", switch_penalty=5.0)
        assert lane.index == 0
        assert group.total_context_switches == 0

    def test_affinity_never_delays_work(self):
        group = LaneGroup(2)
        group.lanes[0].run(10.0, context="A")
        group.lanes[1].run(1.0, context="B")
        # an A-task: affine lane is busy until 10, other lane free at 1 —
        # must take the switch instead of waiting
        lane, start, _ = group.run_on_earliest(1.0, context="A", switch_penalty=2.0)
        assert lane.index == 1
        assert start == 3.0  # 1.0 + switch penalty

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            LaneGroup(0)

    def test_reset(self):
        group = LaneGroup(2)
        group.run_on_earliest(5.0)
        group.reset()
        assert group.makespan == 0.0
        assert group.total_busy == 0.0
