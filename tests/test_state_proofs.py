"""Merkle-proof tests: inclusion, exclusion, tamper detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import keccak
from repro.state.proofs import (
    ProofError,
    prove,
    prove_secure,
    verify_proof,
    verify_secure,
)
from repro.state.trie import EMPTY_ROOT, MPT, SecureMPT


def build(mapping):
    t = MPT()
    for k, v in mapping.items():
        t = t.set(k, v)
    return t


class TestInclusion:
    def test_single_entry(self):
        t = build({b"key": b"value"})
        proof = prove(t, b"key")
        assert verify_proof(t.root_hash(), b"key", proof) == b"value"

    def test_many_entries(self):
        mapping = {f"key{i}".encode(): f"value{i}".encode() for i in range(50)}
        t = build(mapping)
        root = t.root_hash()
        for k, v in mapping.items():
            assert verify_proof(root, k, prove(t, k)) == v

    def test_deep_shared_prefixes(self):
        mapping = {
            b"aaaa": b"1",
            b"aaab": b"2",
            b"aabb": b"3",
            b"a": b"4",
            b"aaaaaaaa": b"5",
        }
        t = build(mapping)
        root = t.root_hash()
        for k, v in mapping.items():
            assert verify_proof(root, k, prove(t, k)) == v


class TestExclusion:
    def test_absent_key_in_populated_trie(self):
        t = build({f"key{i}".encode(): b"v" for i in range(20)})
        root = t.root_hash()
        for absent in (b"missing", b"key999", b"", b"zzz"):
            proof = prove(t, absent)
            assert verify_proof(root, absent, proof) is None

    def test_empty_trie(self):
        assert prove(MPT(), b"x") == []
        assert verify_proof(EMPTY_ROOT, b"x", []) is None

    def test_empty_proof_for_nonempty_root_rejected(self):
        t = build({b"a": b"1"})
        with pytest.raises(ProofError):
            verify_proof(t.root_hash(), b"a", [])


class TestTampering:
    def test_wrong_root_rejected(self):
        t = build({b"key": b"value"})
        other = build({b"key": b"other"})
        proof = prove(t, b"key")
        with pytest.raises(ProofError):
            verify_proof(other.root_hash(), b"key", proof)

    def test_modified_node_rejected(self):
        t = build({f"k{i}".encode(): b"v" * 40 for i in range(10)})
        proof = prove(t, b"k3")
        assert len(proof) >= 2
        tampered = list(proof)
        tampered[-1] = tampered[-1][:-1] + bytes([tampered[-1][-1] ^ 1])
        with pytest.raises(ProofError):
            verify_proof(t.root_hash(), b"k3", tampered)

    def test_truncated_proof_rejected(self):
        t = build({f"k{i}".encode(): b"v" * 40 for i in range(30)})
        proof = prove(t, b"k7")
        if len(proof) > 1:
            with pytest.raises(ProofError):
                verify_proof(t.root_hash(), b"k7", proof[:-1])

    def test_garbage_rlp_rejected(self):
        t = build({b"key": b"value"})
        with pytest.raises(ProofError):
            verify_proof(t.root_hash(), b"key", [b"\xff\xff\xff"])

    def test_proof_for_one_key_does_not_prove_another(self):
        mapping = {f"key{i}".encode(): f"v{i}".encode() for i in range(20)}
        t = build(mapping)
        root = t.root_hash()
        proof_for_3 = prove(t, b"key3")
        # verifying a different key with this proof either fails or (if the
        # path happens to diverge early) yields an exclusion — never the
        # wrong value
        try:
            value = verify_proof(root, b"key15", proof_for_3)
        except ProofError:
            value = None
        assert value != mapping[b"key3"]
        assert value is None or value == mapping[b"key15"]


@st.composite
def tries_and_keys(draw):
    mapping = draw(
        st.dictionaries(
            st.binary(min_size=1, max_size=6),
            st.binary(min_size=1, max_size=48),
            min_size=1,
            max_size=30,
        )
    )
    present = draw(st.sampled_from(sorted(mapping)))
    return mapping, present


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(tries_and_keys())
    def test_inclusion_round_trip(self, data):
        mapping, key = data
        t = build(mapping)
        assert verify_proof(t.root_hash(), key, prove(t, key)) == mapping[key]

    @settings(max_examples=40, deadline=None)
    @given(tries_and_keys(), st.binary(min_size=1, max_size=6))
    def test_arbitrary_key_proof_consistent_with_trie(self, data, probe):
        mapping, _ = data
        t = build(mapping)
        value = verify_proof(t.root_hash(), probe, prove(t, probe))
        assert value == mapping.get(probe)


class TestSecureProofs:
    def test_account_style_proof(self):
        t = SecureMPT()
        t = t.set(b"account-1", b"account-data-1")
        t = t.set(b"account-2", b"account-data-2")
        proof = prove_secure(t, b"account-1")
        assert verify_secure(t.root_hash(), b"account-1", proof) == b"account-data-1"

    def test_state_snapshot_account_proof(self, small_universe):
        """Prove one account's body against the world-state root — what a
        light client does with a block header."""
        snapshot = small_universe.genesis
        trie = snapshot._account_trie
        address = small_universe.eoas[0]
        proof = prove(trie._trie, keccak(bytes(address)))
        body = verify_proof(
            snapshot.state_root(), keccak(bytes(address)), proof
        )
        from repro.state.account import encode_account

        acct = snapshot.account(address)
        assert body == encode_account(acct, snapshot.storage_root(address))
