"""StateDB tests: overlay reads, journal/revert, commit and root hashing."""

import pytest

from repro.common.types import Address
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot

A1 = Address.from_int(1)
A2 = Address.from_int(2)
A3 = Address.from_int(3)


def make_base():
    return genesis_snapshot(
        {
            A1: AccountData(balance=1000),
            A2: AccountData(balance=500, code=b"\x00", storage={1: 42}),
        }
    )


class TestReads:
    def test_base_values_visible(self):
        db = StateDB(make_base())
        assert db.get_balance(A1) == 1000
        assert db.get_storage(A2, 1) == 42
        assert db.get_code(A2) == b"\x00"

    def test_missing_account_defaults(self):
        db = StateDB(make_base())
        assert db.get_balance(A3) == 0
        assert db.get_nonce(A3) == 0
        assert db.get_code(A3) == b""
        assert db.get_storage(A3, 0) == 0
        assert not db.account_exists(A3)

    def test_missing_slot_is_zero(self):
        db = StateDB(make_base())
        assert db.get_storage(A2, 999) == 0


class TestWrites:
    def test_balance_update(self):
        db = StateDB(make_base())
        db.sub_balance(A1, 100)
        db.add_balance(A2, 100)
        assert db.get_balance(A1) == 900
        assert db.get_balance(A2) == 600

    def test_negative_balance_rejected(self):
        db = StateDB(make_base())
        with pytest.raises(ValueError):
            db.sub_balance(A1, 2000)

    def test_write_creates_account(self):
        db = StateDB(make_base())
        db.add_balance(A3, 5)
        assert db.account_exists(A3)

    def test_storage_write_read(self):
        db = StateDB(make_base())
        db.set_storage(A2, 7, 99)
        assert db.get_storage(A2, 7) == 99
        assert db.get_storage(A2, 1) == 42  # untouched slot still visible

    def test_nonce_increment(self):
        db = StateDB(make_base())
        db.increment_nonce(A1)
        db.increment_nonce(A1)
        assert db.get_nonce(A1) == 2


class TestJournal:
    def test_revert_restores_balance(self):
        db = StateDB(make_base())
        mark = db.snapshot()
        db.sub_balance(A1, 100)
        db.revert_to(mark)
        assert db.get_balance(A1) == 1000

    def test_revert_restores_storage(self):
        db = StateDB(make_base())
        mark = db.snapshot()
        db.set_storage(A2, 1, 0)
        db.set_storage(A2, 5, 123)
        db.revert_to(mark)
        assert db.get_storage(A2, 1) == 42
        assert db.get_storage(A2, 5) == 0

    def test_nested_reverts(self):
        db = StateDB(make_base())
        db.sub_balance(A1, 100)  # kept
        outer = db.snapshot()
        db.sub_balance(A1, 100)
        inner = db.snapshot()
        db.sub_balance(A1, 100)
        db.revert_to(inner)
        assert db.get_balance(A1) == 800
        db.revert_to(outer)
        assert db.get_balance(A1) == 900

    def test_revert_removes_created_account(self):
        db = StateDB(make_base())
        mark = db.snapshot()
        db.add_balance(A3, 1)
        db.revert_to(mark)
        assert not db.account_exists(A3)
        snap = db.commit()
        assert snap.account(A3) is None

    def test_invalid_mark_rejected(self):
        db = StateDB(make_base())
        with pytest.raises(ValueError):
            db.revert_to(99)
        with pytest.raises(ValueError):
            db.revert_to(-1)


class TestCommit:
    def test_commit_folds_changes(self):
        db = StateDB(make_base())
        db.sub_balance(A1, 100)
        db.set_storage(A2, 1, 43)
        snap = db.commit()
        assert snap.account(A1).balance == 900
        assert snap.account(A2).storage[1] == 43

    def test_commit_changes_root(self):
        base = make_base()
        db = StateDB(base)
        db.sub_balance(A1, 1)
        snap = db.commit()
        assert snap.state_root() != base.state_root()

    def test_noop_commit_preserves_root(self):
        base = make_base()
        snap = StateDB(base).commit()
        assert snap.state_root() == base.state_root()

    def test_read_only_touch_preserves_root(self):
        base = make_base()
        db = StateDB(base)
        db.get_balance(A1)
        db.get_storage(A2, 1)
        assert db.commit().state_root() == base.state_root()

    def test_equal_states_equal_roots_different_histories(self):
        base = make_base()
        db1 = StateDB(base)
        db1.sub_balance(A1, 100)
        db1.add_balance(A2, 100)

        db2 = StateDB(base)
        db2.add_balance(A2, 100)
        db2.sub_balance(A1, 100)
        assert db1.commit().state_root() == db2.commit().state_root()

    def test_storage_zeroing_restores_root(self):
        base = make_base()
        db = StateDB(base)
        db.set_storage(A2, 50, 7)
        mid = db.commit()
        db2 = StateDB(mid)
        db2.set_storage(A2, 50, 0)
        assert db2.commit().state_root() == base.state_root()

    def test_empty_account_pruned(self):
        base = make_base()
        db = StateDB(base)
        db.add_balance(A3, 10)
        db.sub_balance(A3, 10)
        snap = db.commit()
        assert snap.account(A3) is None
        assert snap.state_root() == base.state_root()

    def test_base_snapshot_untouched_by_commit(self):
        base = make_base()
        db = StateDB(base)
        db.set_storage(A2, 1, 777)
        db.commit()
        assert base.account(A2).storage[1] == 42

    def test_chained_commits(self):
        base = make_base()
        db1 = StateDB(base)
        db1.sub_balance(A1, 10)
        s1 = db1.commit()
        db2 = StateDB(s1)
        db2.sub_balance(A1, 10)
        s2 = db2.commit()
        assert s2.account(A1).balance == 980
        assert len({base.state_root(), s1.state_root(), s2.state_root()}) == 3

    def test_storage_root_tracks_contract_storage(self):
        base = make_base()
        db = StateDB(base)
        db.set_storage(A2, 2, 5)
        snap = db.commit()
        assert snap.storage_root(A2) != base.storage_root(A2)
        assert snap.storage_root(A1) == base.storage_root(A1)
