"""Merkle-Patricia trie tests: semantics, structural sharing, root properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import keccak
from repro.state.proofs import (
    ProofError,
    prove,
    prove_secure,
    verify_proof,
    verify_secure,
)
from repro.state.trie import EMPTY_ROOT, MPT, SecureMPT


class TestBasicSemantics:
    def test_empty_root_constant(self):
        assert MPT().root_hash() == EMPTY_ROOT

    def test_get_missing_returns_none(self):
        assert MPT().get(b"missing") is None

    def test_set_then_get(self):
        t = MPT().set(b"dog", b"puppy")
        assert t.get(b"dog") == b"puppy"

    def test_overwrite(self):
        t = MPT().set(b"k", b"v1").set(b"k", b"v2")
        assert t.get(b"k") == b"v2"

    def test_empty_value_deletes(self):
        t = MPT().set(b"k", b"v").set(b"k", b"")
        assert t.get(b"k") is None
        assert t.root_hash() == EMPTY_ROOT

    def test_delete_missing_is_noop(self):
        t = MPT().set(b"a", b"1")
        t2 = t.delete(b"zz")
        assert t2.root_hash() == t.root_hash()

    def test_prefix_keys_coexist(self):
        t = MPT().set(b"do", b"verb").set(b"dog", b"puppy").set(b"doge", b"coin")
        assert t.get(b"do") == b"verb"
        assert t.get(b"dog") == b"puppy"
        assert t.get(b"doge") == b"coin"

    def test_immutability(self):
        t1 = MPT().set(b"a", b"1")
        t2 = t1.set(b"b", b"2")
        assert t1.get(b"b") is None
        assert t2.get(b"a") == b"1"
        assert t1.root_hash() != t2.root_hash()

    def test_items_sorted(self):
        t = MPT()
        for k in [b"zebra", b"apple", b"mango"]:
            t = t.set(k, k.upper())
        assert [k for k, _ in t.items()] == sorted([b"zebra", b"apple", b"mango"])

    def test_len(self):
        t = MPT().set(b"a", b"1").set(b"b", b"2")
        assert len(t) == 2


class TestRootProperties:
    def test_insertion_order_invariance(self):
        keys = [f"key{i}".encode() for i in range(30)]
        t1 = MPT()
        for k in keys:
            t1 = t1.set(k, k + b"-v")
        t2 = MPT()
        for k in reversed(keys):
            t2 = t2.set(k, k + b"-v")
        assert t1.root_hash() == t2.root_hash()

    def test_insert_delete_restores_root(self):
        t = MPT()
        for i in range(20):
            t = t.set(f"k{i}".encode(), b"v")
        before = t.root_hash()
        t2 = t.set(b"extra", b"x").delete(b"extra")
        assert t2.root_hash() == before

    def test_value_changes_root(self):
        t = MPT().set(b"k", b"v1")
        assert t.root_hash() != MPT().set(b"k", b"v2").root_hash()

    def test_known_single_entry_stability(self):
        # regression anchor: the root of a fixed tiny trie must never change
        r1 = MPT().set(b"a", b"1").root_hash()
        r2 = MPT().set(b"a", b"1").root_hash()
        assert r1 == r2


@st.composite
def key_value_dicts(draw):
    keys = draw(st.lists(st.binary(min_size=1, max_size=8), min_size=0, max_size=25))
    return {k: draw(st.binary(min_size=1, max_size=16)) for k in keys}


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(key_value_dicts())
    def test_matches_dict_semantics(self, mapping):
        t = MPT()
        for k, v in mapping.items():
            t = t.set(k, v)
        for k, v in mapping.items():
            assert t.get(k) == v
        assert len(t) == len(mapping)

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts(), st.randoms(use_true_random=False))
    def test_root_independent_of_order(self, mapping, rng):
        items = list(mapping.items())
        t1 = MPT()
        for k, v in items:
            t1 = t1.set(k, v)
        rng.shuffle(items)
        t2 = MPT()
        for k, v in items:
            t2 = t2.set(k, v)
        assert t1.root_hash() == t2.root_hash()

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts())
    def test_delete_all_returns_to_empty(self, mapping):
        t = MPT()
        for k, v in mapping.items():
            t = t.set(k, v)
        for k in mapping:
            t = t.delete(k)
        assert t.root_hash() == EMPTY_ROOT

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts(), key_value_dicts())
    def test_distinct_mappings_distinct_roots(self, a, b):
        ta = MPT()
        for k, v in a.items():
            ta = ta.set(k, v)
        tb = MPT()
        for k, v in b.items():
            tb = tb.set(k, v)
        if a == b:
            assert ta.root_hash() == tb.root_hash()
        else:
            assert ta.root_hash() != tb.root_hash()


class TestRandomizedOps:
    """Seeded op-sequence soak: the trie must track a plain dict exactly.

    Long interleaved set/overwrite/delete runs are where structural bugs
    (branch collapse, extension merging) hide; a dict is the reference
    model and the insertion-order-invariant root is the cross-check.
    """

    KEYS = [f"acct-{i}".encode() for i in range(40)] + [
        b"a",
        b"ab",
        b"abc",
        b"abd",  # shared-prefix cluster to force extension splits
    ]

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_random_ops_match_dict_reference(self, seed):
        rng = random.Random(seed)
        trie, model = MPT(), {}
        for step in range(300):
            key = rng.choice(self.KEYS)
            if rng.random() < 0.3 and model:
                key = rng.choice(list(model))
                trie = trie.delete(key)
                model.pop(key, None)
            else:
                value = f"v{step}".encode()
                trie = trie.set(key, value)
                model[key] = value
            if step % 50 == 0:
                assert len(trie) == len(model)
        for key in self.KEYS:
            assert trie.get(key) == model.get(key)
        rebuilt = MPT()
        for key in sorted(model):
            rebuilt = rebuilt.set(key, model[key])
        assert trie.root_hash() == rebuilt.root_hash()

    @pytest.mark.parametrize("seed", [3, 11])
    def test_random_ops_secure_variant(self, seed):
        rng = random.Random(seed)
        trie, model = SecureMPT(), {}
        for step in range(200):
            key = rng.choice(self.KEYS)
            if rng.random() < 0.25 and model:
                key = rng.choice(list(model))
                trie = trie.delete(key)
                model.pop(key, None)
            else:
                value = f"s{step}".encode()
                trie = trie.set(key, value)
                model[key] = value
        for key in self.KEYS:
            assert trie.get(key) == model.get(key)
        assert trie.is_empty() == (not model)


class TestUpdateMany:
    def test_batch_equals_sequential_sets(self):
        items = [(f"k{i}".encode(), f"v{i}".encode()) for i in range(25)]
        batched = SecureMPT().update_many(items)
        sequential = SecureMPT()
        for key, value in items:
            sequential = sequential.set(key, value)
        assert batched.root_hash() == sequential.root_hash()

    def test_empty_value_deletes_in_batch(self):
        base = SecureMPT().set(b"keep", b"1").set(b"drop", b"2")
        updated = base.update_many([(b"drop", b"")])
        assert updated.get(b"drop") is None
        assert updated.get(b"keep") == b"1"
        assert updated.root_hash() == SecureMPT().set(b"keep", b"1").root_hash()

    def test_noop_batch_preserves_identity(self):
        base = SecureMPT().set(b"k", b"v")
        assert base.update_many([]) is base
        # deleting an absent key leaves the underlying trie untouched
        assert base.update_many([(b"ghost", b"")]) is base
        # rewriting an equal value rebuilds the path but keeps the root
        assert base.update_many([(b"k", b"v")]).root_hash() == base.root_hash()

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts())
    def test_batch_matches_sequential_for_any_mapping(self, mapping):
        items = list(mapping.items())
        batched = SecureMPT().update_many(items)
        sequential = SecureMPT()
        for key, value in items:
            sequential = sequential.set(key, value)
        assert batched.root_hash() == sequential.root_hash()


class TestProofs:
    def _populated(self):
        trie = MPT()
        for i in range(20):
            trie = trie.set(f"key-{i}".encode(), f"value-{i}".encode())
        return trie

    def test_inclusion_proof_round_trips(self):
        trie = self._populated()
        root = trie.root_hash()
        for i in (0, 7, 19):
            key = f"key-{i}".encode()
            proof = prove(trie, key)
            assert verify_proof(root, key, proof) == f"value-{i}".encode()

    def test_exclusion_proof_returns_none(self):
        trie = self._populated()
        proof = prove(trie, b"absent")
        assert verify_proof(trie.root_hash(), b"absent", proof) is None

    def test_empty_trie_exclusion(self):
        assert verify_proof(EMPTY_ROOT, b"anything", []) is None

    def test_tampered_node_rejected(self):
        trie = self._populated()
        proof = prove(trie, b"key-3")
        tampered = list(proof)
        tampered[0] = tampered[0][:-1] + bytes([tampered[0][-1] ^ 0x01])
        with pytest.raises(ProofError):
            verify_proof(trie.root_hash(), b"key-3", tampered)

    def test_truncated_proof_rejected(self):
        trie = self._populated()
        proof = prove(trie, b"key-3")
        assert len(proof) > 1, "need a multi-node path to truncate"
        with pytest.raises(ProofError):
            verify_proof(trie.root_hash(), b"key-3", proof[:-1])

    def test_proof_against_wrong_root_rejected(self):
        trie = self._populated()
        other = trie.set(b"key-0", b"changed")
        proof = prove(trie, b"key-0")
        with pytest.raises(ProofError):
            verify_proof(other.root_hash(), b"key-0", proof)

    def test_secure_proofs_round_trip(self):
        trie = SecureMPT()
        for i in range(10):
            trie = trie.set(f"acct{i}".encode(), f"data{i}".encode())
        root = trie.root_hash()
        proof = prove_secure(trie, b"acct4")
        assert verify_secure(root, b"acct4", proof) == b"data4"
        assert verify_secure(root, b"ghost", prove_secure(trie, b"ghost")) is None

    @settings(max_examples=30, deadline=None)
    @given(key_value_dicts())
    def test_every_key_proves_for_any_mapping(self, mapping):
        trie = MPT()
        for key, value in mapping.items():
            trie = trie.set(key, value)
        root = trie.root_hash()
        for key, value in mapping.items():
            assert verify_proof(root, key, prove(trie, key)) == value
        missing = b"\xff" * 9  # longer than any generated key
        assert verify_proof(root, missing, prove(trie, missing)) is None


class TestSecureMPT:
    def test_get_set(self):
        t = SecureMPT().set(b"account1", b"data")
        assert t.get(b"account1") == b"data"

    def test_keys_are_hashed(self):
        t = SecureMPT().set(b"k", b"v")
        # the raw key is not reachable through the underlying trie
        assert t._trie.get(b"k") is None
        assert t._trie.get(keccak(b"k")) == b"v"

    def test_delete(self):
        t = SecureMPT().set(b"k", b"v").delete(b"k")
        assert t.get(b"k") is None
        assert t.is_empty()

    def test_root_matches_regardless_of_insertion_order(self):
        keys = [f"acct{i}".encode() for i in range(10)]
        t1 = SecureMPT()
        t2 = SecureMPT()
        for k in keys:
            t1 = t1.set(k, b"v")
        for k in reversed(keys):
            t2 = t2.set(k, b"v")
        assert t1.root_hash() == t2.root_hash()
