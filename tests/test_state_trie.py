"""Merkle-Patricia trie tests: semantics, structural sharing, root properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import keccak
from repro.state.trie import EMPTY_ROOT, MPT, SecureMPT


class TestBasicSemantics:
    def test_empty_root_constant(self):
        assert MPT().root_hash() == EMPTY_ROOT

    def test_get_missing_returns_none(self):
        assert MPT().get(b"missing") is None

    def test_set_then_get(self):
        t = MPT().set(b"dog", b"puppy")
        assert t.get(b"dog") == b"puppy"

    def test_overwrite(self):
        t = MPT().set(b"k", b"v1").set(b"k", b"v2")
        assert t.get(b"k") == b"v2"

    def test_empty_value_deletes(self):
        t = MPT().set(b"k", b"v").set(b"k", b"")
        assert t.get(b"k") is None
        assert t.root_hash() == EMPTY_ROOT

    def test_delete_missing_is_noop(self):
        t = MPT().set(b"a", b"1")
        t2 = t.delete(b"zz")
        assert t2.root_hash() == t.root_hash()

    def test_prefix_keys_coexist(self):
        t = MPT().set(b"do", b"verb").set(b"dog", b"puppy").set(b"doge", b"coin")
        assert t.get(b"do") == b"verb"
        assert t.get(b"dog") == b"puppy"
        assert t.get(b"doge") == b"coin"

    def test_immutability(self):
        t1 = MPT().set(b"a", b"1")
        t2 = t1.set(b"b", b"2")
        assert t1.get(b"b") is None
        assert t2.get(b"a") == b"1"
        assert t1.root_hash() != t2.root_hash()

    def test_items_sorted(self):
        t = MPT()
        for k in [b"zebra", b"apple", b"mango"]:
            t = t.set(k, k.upper())
        assert [k for k, _ in t.items()] == sorted([b"zebra", b"apple", b"mango"])

    def test_len(self):
        t = MPT().set(b"a", b"1").set(b"b", b"2")
        assert len(t) == 2


class TestRootProperties:
    def test_insertion_order_invariance(self):
        keys = [f"key{i}".encode() for i in range(30)]
        t1 = MPT()
        for k in keys:
            t1 = t1.set(k, k + b"-v")
        t2 = MPT()
        for k in reversed(keys):
            t2 = t2.set(k, k + b"-v")
        assert t1.root_hash() == t2.root_hash()

    def test_insert_delete_restores_root(self):
        t = MPT()
        for i in range(20):
            t = t.set(f"k{i}".encode(), b"v")
        before = t.root_hash()
        t2 = t.set(b"extra", b"x").delete(b"extra")
        assert t2.root_hash() == before

    def test_value_changes_root(self):
        t = MPT().set(b"k", b"v1")
        assert t.root_hash() != MPT().set(b"k", b"v2").root_hash()

    def test_known_single_entry_stability(self):
        # regression anchor: the root of a fixed tiny trie must never change
        r1 = MPT().set(b"a", b"1").root_hash()
        r2 = MPT().set(b"a", b"1").root_hash()
        assert r1 == r2


@st.composite
def key_value_dicts(draw):
    keys = draw(st.lists(st.binary(min_size=1, max_size=8), min_size=0, max_size=25))
    return {k: draw(st.binary(min_size=1, max_size=16)) for k in keys}


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(key_value_dicts())
    def test_matches_dict_semantics(self, mapping):
        t = MPT()
        for k, v in mapping.items():
            t = t.set(k, v)
        for k, v in mapping.items():
            assert t.get(k) == v
        assert len(t) == len(mapping)

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts(), st.randoms(use_true_random=False))
    def test_root_independent_of_order(self, mapping, rng):
        items = list(mapping.items())
        t1 = MPT()
        for k, v in items:
            t1 = t1.set(k, v)
        rng.shuffle(items)
        t2 = MPT()
        for k, v in items:
            t2 = t2.set(k, v)
        assert t1.root_hash() == t2.root_hash()

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts())
    def test_delete_all_returns_to_empty(self, mapping):
        t = MPT()
        for k, v in mapping.items():
            t = t.set(k, v)
        for k in mapping:
            t = t.delete(k)
        assert t.root_hash() == EMPTY_ROOT

    @settings(max_examples=40, deadline=None)
    @given(key_value_dicts(), key_value_dicts())
    def test_distinct_mappings_distinct_roots(self, a, b):
        ta = MPT()
        for k, v in a.items():
            ta = ta.set(k, v)
        tb = MPT()
        for k, v in b.items():
            tb = tb.set(k, v)
        if a == b:
            assert ta.root_hash() == tb.root_hash()
        else:
            assert ta.root_hash() != tb.root_hash()


class TestSecureMPT:
    def test_get_set(self):
        t = SecureMPT().set(b"account1", b"data")
        assert t.get(b"account1") == b"data"

    def test_keys_are_hashed(self):
        t = SecureMPT().set(b"k", b"v")
        # the raw key is not reachable through the underlying trie
        assert t._trie.get(b"k") is None
        assert t._trie.get(keccak(b"k")) == b"v"

    def test_delete(self):
        t = SecureMPT().set(b"k", b"v").delete(b"k")
        assert t.get(b"k") is None
        assert t.is_empty()

    def test_root_matches_regardless_of_insertion_order(self):
        keys = [f"acct{i}".encode() for i in range(10)]
        t1 = SecureMPT()
        t2 = SecureMPT()
        for k in keys:
            t1 = t1.set(k, b"v")
        for k in reversed(keys):
            t2 = t2.set(k, b"v")
        assert t1.root_hash() == t2.root_hash()
