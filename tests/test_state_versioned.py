"""Tests for the multi-version store and OCC snapshot views."""

import pytest

from repro.common.types import Address
from repro.state.access import RecordingState, balance_key, storage_key
from repro.state.account import AccountData
from repro.state.statedb import genesis_snapshot
from repro.state.versioned import MultiVersionStore, OCCStateView

A1 = Address.from_int(1)
A2 = Address.from_int(2)


def make_store():
    base = genesis_snapshot(
        {A1: AccountData(balance=100), A2: AccountData(balance=50, storage={3: 9})}
    )
    return MultiVersionStore(base)


class TestMultiVersionStore:
    def test_version_zero_reads_base(self):
        store = make_store()
        assert store.read_at(balance_key(A1), 0) == 100
        assert store.read_at(storage_key(A2, 3), 0) == 9
        assert store.read_at(storage_key(A2, 99), 0) == 0

    def test_versioned_reads(self):
        store = make_store()
        store.apply({balance_key(A1): 90}, 1)
        store.apply({balance_key(A1): 80}, 2)
        assert store.read_at(balance_key(A1), 0) == 100
        assert store.read_at(balance_key(A1), 1) == 90
        assert store.read_at(balance_key(A1), 2) == 80
        assert store.read_at(balance_key(A1), 7) == 80  # future snapshot sees latest

    def test_latest_version(self):
        store = make_store()
        assert store.latest_version(balance_key(A1)) == 0
        store.apply({balance_key(A1): 90}, 1)
        assert store.latest_version(balance_key(A1)) == 1
        assert store.latest_version(balance_key(A2)) == 0

    def test_out_of_order_commit_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.apply({balance_key(A1): 90}, 2)
        store.apply({}, 1)
        with pytest.raises(ValueError):
            store.apply({}, 1)

    def test_final_values(self):
        store = make_store()
        store.apply({balance_key(A1): 90}, 1)
        store.apply({balance_key(A1): 80, storage_key(A2, 3): 10}, 2)
        finals = store.final_values()
        assert finals[balance_key(A1)] == 80
        assert finals[storage_key(A2, 3)] == 10


class TestOCCStateView:
    def test_reads_at_snapshot_version(self):
        store = make_store()
        store.apply({balance_key(A1): 90}, 1)
        old_view = OCCStateView(store, 0)
        new_view = OCCStateView(store, 1)
        assert old_view.get_balance(A1) == 100
        assert new_view.get_balance(A1) == 90

    def test_read_your_own_write(self):
        view = OCCStateView(make_store(), 0)
        view.set_storage(A2, 3, 77)
        assert view.get_storage(A2, 3) == 77

    def test_writes_invisible_to_other_views(self):
        store = make_store()
        v1 = OCCStateView(store, 0)
        v2 = OCCStateView(store, 0)
        v1.set_balance(A1, 1)
        assert v2.get_balance(A1) == 100

    def test_journal_revert(self):
        view = OCCStateView(make_store(), 0)
        view.set_balance(A1, 60)
        mark = view.snapshot()
        view.set_balance(A1, 10)
        view.set_storage(A2, 3, 0)
        view.revert_to(mark)
        assert view.get_balance(A1) == 60
        assert view.get_storage(A2, 3) == 9

    def test_buffered_writes_exposed(self):
        view = OCCStateView(make_store(), 0)
        view.set_balance(A1, 60)
        view.set_storage(A2, 3, 1)
        writes = view.buffered_writes
        assert writes[balance_key(A1)] == 60
        assert writes[storage_key(A2, 3)] == 1

    def test_negative_balance_rejected(self):
        view = OCCStateView(make_store(), 0)
        with pytest.raises(ValueError):
            view.sub_balance(A1, 101)

    def test_nonce_and_code(self):
        view = OCCStateView(make_store(), 0)
        assert view.get_nonce(A1) == 0
        view.increment_nonce(A1)
        assert view.get_nonce(A1) == 1
        view.set_code(A2, b"\x01\x02")
        assert view.get_code(A2) == b"\x01\x02"

    def test_account_exists(self):
        view = OCCStateView(make_store(), 0)
        assert view.account_exists(A1)
        assert not view.account_exists(Address.from_int(999))


class TestRecordingState:
    def test_reads_recorded_with_version(self):
        store = make_store()
        rec = RecordingState(OCCStateView(store, 0), version=0)
        rec.get_balance(A1)
        rec.get_storage(A2, 3)
        assert rec.rw.reads[balance_key(A1)] == 0
        assert rec.rw.reads[storage_key(A2, 3)] == 0

    def test_writes_recorded(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.set_storage(A2, 3, 5)
        assert rec.rw.writes[storage_key(A2, 3)] == 5

    def test_read_after_own_write_not_recorded(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.set_storage(A2, 3, 5)
        rec.get_storage(A2, 3)
        assert storage_key(A2, 3) not in rec.rw.reads

    def test_read_before_write_recorded_once(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.get_storage(A2, 3)
        rec.set_storage(A2, 3, 5)
        rec.get_storage(A2, 3)
        assert storage_key(A2, 3) in rec.rw.reads
        assert rec.rw.writes[storage_key(A2, 3)] == 5

    def test_add_balance_records_read_and_write(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.add_balance(A1, 10)
        assert balance_key(A1) in rec.rw.reads
        assert rec.rw.writes[balance_key(A1)] == 110

    def test_conflict_detection_between_rwsets(self):
        rec1 = RecordingState(OCCStateView(make_store(), 0))
        rec1.get_storage(A2, 3)
        rec2 = RecordingState(OCCStateView(make_store(), 0))
        rec2.set_storage(A2, 3, 1)
        assert rec1.rw.conflicts_with(rec2.rw)
        assert rec2.rw.conflicts_with(rec1.rw)

        rec3 = RecordingState(OCCStateView(make_store(), 0))
        rec3.get_balance(A1)
        assert not rec3.rw.conflicts_with(rec2.rw)

    def test_touched_addresses(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.get_balance(A1)
        rec.set_storage(A2, 3, 1)
        assert rec.rw.touched_addresses() == frozenset({A1, A2})

    def test_freeze_round_trip(self):
        rec = RecordingState(OCCStateView(make_store(), 0))
        rec.get_balance(A1)
        rec.set_storage(A2, 3, 1)
        frozen = rec.rw.freeze()
        assert balance_key(A1) in frozen.read_keys()
        assert storage_key(A2, 3) in frozen.write_keys()
        assert hash(frozen) == hash(rec.rw.freeze())
