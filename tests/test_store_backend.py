"""DiskStore commit path: manifests, snapshots, compaction, metrics."""

import os

import pytest

from repro.chain.blockchain import Blockchain
from repro.obs.metrics import MetricsRegistry
from repro.store import (
    DiskStore,
    Manifest,
    MemoryStore,
    StoreError,
    encode_header,
    recover,
)
from repro.store.blocklog import LOG_MAGIC

pytestmark = pytest.mark.store


def _open_disk_chain(data_dir, genesis_state, **kwargs):
    store = DiskStore(str(data_dir), fsync=False, **kwargs)
    chain = Blockchain(genesis_state, store=store)
    store.initialize(encode_header(chain.genesis.header), genesis_state)
    return chain, store


class TestInitialize:
    def test_fresh_dir_layout(self, tmp_path, small_universe):
        chain, store = _open_disk_chain(tmp_path / "node", small_universe.genesis)
        files = sorted(os.listdir(tmp_path / "node"))
        assert files == ["blocks.log", "manifest.json", "snapshot_00000000.json"]
        manifest = Manifest.load(str(tmp_path / "node"))
        assert manifest.height == 0
        assert manifest.clean is False  # open store = not sealed
        assert manifest.snapshot is not None
        assert manifest.snapshot.height == 0
        assert manifest.snapshot.state_root == bytes(
            small_universe.genesis.state_root()
        ).hex()
        store.close()

    def test_fresh_log_is_magic_only(self, tmp_path, small_universe):
        chain, store = _open_disk_chain(tmp_path / "node", small_universe.genesis)
        assert (tmp_path / "node" / "blocks.log").read_bytes() == LOG_MAGIC
        store.close()


class TestCommitPath:
    def test_every_accepted_block_advances_the_manifest(
        self, tmp_path, small_universe, build_chain
    ):
        chain, store = _open_disk_chain(
            tmp_path / "node", small_universe.genesis, snapshot_interval=0
        )
        for block, post_state in build_chain(3):
            chain.add_block(block, post_state)
            manifest = Manifest.load(str(tmp_path / "node"))
            assert manifest.height == block.number
            assert manifest.head_hash == bytes(block.hash).hex()
            assert manifest.state_root == bytes(block.header.state_root).hex()
            assert manifest.log_bytes == store.log.size
        store.close()

    def test_snapshot_written_at_interval(
        self, tmp_path, small_universe, build_chain
    ):
        chain, store = _open_disk_chain(
            tmp_path / "node",
            small_universe.genesis,
            snapshot_interval=2,
            compact=False,
        )
        pairs = build_chain(4)
        for block, post_state in pairs:
            chain.add_block(block, post_state)
        manifest = Manifest.load(str(tmp_path / "node"))
        assert manifest.snapshot.height == 4
        assert manifest.snapshot.file == "snapshot_00000004.json"
        assert manifest.snapshot.state_root == bytes(
            pairs[3][1].state_root()
        ).hex()
        store.close()

    def test_seal_marks_manifest_clean(self, tmp_path, small_universe, build_chain):
        chain, store = _open_disk_chain(
            tmp_path / "node", small_universe.genesis, snapshot_interval=0
        )
        block, post_state = build_chain(1)[0]
        chain.add_block(block, post_state)
        assert Manifest.load(str(tmp_path / "node")).clean is False
        store.seal()
        assert Manifest.load(str(tmp_path / "node")).clean is True
        store.close()

    def test_store_metrics_counters(self, tmp_path, small_universe, build_chain):
        metrics = MetricsRegistry()
        store = DiskStore(
            str(tmp_path / "node"),
            fsync=False,
            snapshot_interval=2,
            metrics=metrics,
        )
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(encode_header(chain.genesis.header), small_universe.genesis)
        for block, post_state in build_chain(2):
            chain.add_block(block, post_state)
        snap = metrics.snapshot()
        assert snap["counters"]["store.blocks_appended"] == 2
        assert snap["counters"]["store.snapshots"] == 1
        assert snap["counters"]["store.manifest_writes"] == 2  # one per block
        assert snap["counters"]["store.bytes_appended"] > 0
        store.close()


class TestCompaction:
    def test_snapshot_triggers_generation_rollover(
        self, tmp_path, small_universe, build_chain
    ):
        chain, store = _open_disk_chain(
            tmp_path / "node", small_universe.genesis, snapshot_interval=2
        )
        for block, post_state in build_chain(5):
            chain.add_block(block, post_state)
        manifest = Manifest.load(str(tmp_path / "node"))
        # blocks 1-4 superseded by the height-4 snapshot: only 5 remains
        assert manifest.log_file == "blocks_00000004.log"
        assert manifest.log_start_height == 5
        assert [b.number for b in store.log.read_all()] == [5]
        # only the live generation and the referenced snapshot survive
        files = sorted(os.listdir(tmp_path / "node"))
        assert files == [
            "blocks_00000004.log",
            "manifest.json",
            "snapshot_00000004.json",
        ]
        store.close()

    def test_retry_clobbers_stale_partial_generation(
        self, tmp_path, small_universe, build_chain
    ):
        """A crash between writing a new generation and repointing the
        manifest leaves a stale — possibly torn — ``blocks_<horizon>.log``;
        the retry at the same horizon must replace it atomically, never
        append survivors after the remnant bytes."""
        chain, store = _open_disk_chain(
            tmp_path / "node", small_universe.genesis, snapshot_interval=2
        )
        pairs = build_chain(3)
        chain.add_block(*pairs[0])
        # forge the remnant at the exact path compaction will use when
        # block 2's snapshot lands (horizon 2): magic + a torn record
        remnant = tmp_path / "node" / "blocks_00000002.log"
        remnant.write_bytes(LOG_MAGIC + b"\x99\x00\x00\x00\xde\xad")
        for pair in pairs[1:]:
            chain.add_block(*pair)
        assert [b.number for b in store.log.read_all()] == [3]
        store.close()
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.chain.height() == 3
        assert result.chain.head.hash == pairs[2][0].hash

    def test_compaction_disabled_keeps_full_log(
        self, tmp_path, small_universe, build_chain
    ):
        chain, store = _open_disk_chain(
            tmp_path / "node",
            small_universe.genesis,
            snapshot_interval=2,
            compact=False,
        )
        for block, post_state in build_chain(4):
            chain.add_block(block, post_state)
        assert [b.number for b in store.log.read_all()] == [1, 2, 3, 4]
        assert Manifest.load(str(tmp_path / "node")).log_file == "blocks.log"
        store.close()


class TestVerifyWrites:
    def test_unserialisable_block_refused_before_append(
        self, tmp_path, small_universe, build_chain, monkeypatch
    ):
        """The codec self-check runs before the record hits the log, and
        a store failure propagates with the head unpublished."""
        import repro.store.backend as backend_mod

        chain, store = _open_disk_chain(
            tmp_path / "node", small_universe.genesis, snapshot_interval=0
        )
        monkeypatch.setattr(
            backend_mod, "verify_roundtrip", lambda block: "forced divergence"
        )
        block, post_state = build_chain(1)[0]
        with pytest.raises(StoreError, match="codec round-trip"):
            chain.add_block(block, post_state)
        assert store.log.read_all() == []
        # the block is resident as a sibling, but never became canonical
        assert block.hash in chain
        assert chain.head.number == 0
        store.close()

    def test_verify_writes_can_be_disabled(
        self, tmp_path, small_universe, build_chain, monkeypatch
    ):
        import repro.store.backend as backend_mod

        chain, store = _open_disk_chain(
            tmp_path / "node",
            small_universe.genesis,
            snapshot_interval=0,
            verify_writes=False,
        )
        monkeypatch.setattr(
            backend_mod, "verify_roundtrip", lambda block: "forced divergence"
        )
        block, post_state = build_chain(1)[0]
        assert chain.add_block(block, post_state) is True
        assert [b.number for b in store.log.read_all()] == [1]
        store.close()


class TestMemoryStore:
    def test_null_object_protocol(self, small_universe, build_chain):
        store = MemoryStore()
        chain = Blockchain(small_universe.genesis, store=store)
        block, post_state = build_chain(1)[0]
        assert chain.add_block(block, post_state) is True
        store.flush()
        store.seal()
        store.close()

    def test_default_chain_has_no_store(self, small_universe, build_chain):
        chain = Blockchain(small_universe.genesis)
        block, post_state = build_chain(1)[0]
        assert chain.add_block(block, post_state) is True
        assert chain._store is None
