"""Block log framing: append/scan round trips, torn tails, corruption."""

import os

import pytest

from repro.store.blocklog import LOG_MAGIC, RECORD_HEADER, BlockLog
from repro.store.errors import BlockLogCorruptError, TornTailError

pytestmark = pytest.mark.store


@pytest.fixture()
def blocks(build_chain):
    return [b for b, _ in build_chain(3)]


class TestAppendScan:
    def test_round_trip_preserves_hashes(self, tmp_path, blocks):
        with BlockLog(str(tmp_path / "blocks.log"), fsync=False) as log:
            offsets = [log.append(b) for b in blocks]
            scanned = list(log.scan())
        assert [off for off, _ in scanned] == offsets
        assert [b.hash for _, b in scanned] == [b.hash for b in blocks]
        # transactions and receipts survive byte-identically too
        for original, (_, decoded) in zip(blocks, scanned):
            assert [t.hash for t in decoded.transactions] == [
                t.hash for t in original.transactions
            ]
            assert [r.encode() for r in decoded.receipts] == [
                r.encode() for r in original.receipts
            ]

    def test_fresh_log_is_magic_only(self, tmp_path):
        with BlockLog(str(tmp_path / "blocks.log"), fsync=False) as log:
            assert log.size == len(LOG_MAGIC)
            assert log.read_all() == []

    def test_reopen_appends_after_existing_records(self, tmp_path, blocks):
        path = str(tmp_path / "blocks.log")
        with BlockLog(path, fsync=False) as log:
            log.append(blocks[0])
        with BlockLog(path, fsync=False) as log:
            log.append(blocks[1])
            assert [b.hash for b in log.read_all()] == [
                blocks[0].hash,
                blocks[1].hash,
            ]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "blocks.log"
        path.write_bytes(b"NOTALOG!" + b"\x00" * 32)
        with pytest.raises(BlockLogCorruptError):
            BlockLog(str(path), fsync=False)


class TestTornTail:
    def test_torn_record_raises_with_truncation_offset(self, tmp_path, blocks):
        with BlockLog(str(tmp_path / "blocks.log"), fsync=False) as log:
            log.append(blocks[0])
            torn_at = log.size
            log.append(blocks[1], tear_after=RECORD_HEADER.size + 5)
            with pytest.raises(TornTailError) as excinfo:
                list(log.scan())
            assert excinfo.value.offset == torn_at

    def test_truncation_heals_torn_tail(self, tmp_path, blocks):
        with BlockLog(str(tmp_path / "blocks.log"), fsync=False) as log:
            log.append(blocks[0])
            torn_at = log.size
            log.append(blocks[1], tear_after=3)  # even the header is torn
            log.truncate_to(torn_at)
            assert [b.hash for b in log.read_all()] == [blocks[0].hash]
            # the healed log accepts fresh appends
            log.append(blocks[1])
            assert len(log.read_all()) == 2

    def test_cannot_truncate_into_magic(self, tmp_path, blocks):
        with BlockLog(str(tmp_path / "blocks.log"), fsync=False) as log:
            log.append(blocks[0])
            with pytest.raises(ValueError):
                log.truncate_to(3)


class TestInteriorCorruption:
    def _flip_payload_byte(self, path, record_offset):
        """Flip a byte safely inside a record's payload (past its header)."""
        with open(path, "r+b") as fh:
            fh.seek(record_offset + RECORD_HEADER.size + 10)
            byte = fh.read(1)[0]
            fh.seek(record_offset + RECORD_HEADER.size + 10)
            fh.write(bytes([byte ^ 0xFF]))

    def test_non_final_damage_is_corruption_not_torn(self, tmp_path, blocks):
        path = str(tmp_path / "blocks.log")
        with BlockLog(path, fsync=False) as log:
            first = log.append(blocks[0])
            log.append(blocks[1])
        self._flip_payload_byte(path, first)
        with BlockLog(path, fsync=False) as log:
            with pytest.raises(BlockLogCorruptError) as excinfo:
                list(log.scan())
        assert excinfo.value.offset == first

    def test_final_record_damage_is_torn(self, tmp_path, blocks):
        path = str(tmp_path / "blocks.log")
        with BlockLog(path, fsync=False) as log:
            log.append(blocks[0])
            last = log.append(blocks[1])
        self._flip_payload_byte(path, last)
        with BlockLog(path, fsync=False) as log:
            with pytest.raises(TornTailError) as excinfo:
                list(log.scan())
        assert excinfo.value.offset == last


class TestRewrite:
    def test_rewrite_keeps_only_given_blocks(self, tmp_path, blocks):
        path = str(tmp_path / "blocks.log")
        with BlockLog(path, fsync=False) as log:
            for b in blocks:
                log.append(b)
            log.rewrite(blocks[2:])
            assert [b.hash for b in log.read_all()] == [blocks[2].hash]
        assert not os.path.exists(path + ".tmp")
