"""Codec round trips: headers, transactions, receipts, blocks, digests."""

import pytest

from repro.chain.block import BlockHeader
from repro.common.hashing import Hash32
from repro.common.types import Address
from repro.store.codec import (
    chain_digest,
    decode_block,
    decode_header,
    decode_transaction,
    encode_block,
    encode_header,
    encode_transaction,
    verify_roundtrip,
)
from repro.txpool.transaction import Transaction

pytestmark = pytest.mark.store


def _header(**overrides):
    base = dict(
        parent_hash=Hash32(b"\x01" * 32),
        number=7,
        state_root=Hash32(b"\x02" * 32),
        transactions_root=Hash32(b"\x03" * 32),
        receipts_root=Hash32(b"\x04" * 32),
        gas_used=12345,
        gas_limit=30_000_000,
        coinbase=Address(b"\x05" * 20),
        timestamp=1_700_000_000,
        proposer_id="node-1",
        extra=b"hello",
        logs_bloom=bytes(256),
    )
    base.update(overrides)
    return BlockHeader(**base)


class TestHeaderCodec:
    def test_round_trip_preserves_hash(self):
        header = _header()
        assert decode_header(encode_header(header)) == header

    def test_zero_length_extra_and_empty_proposer(self):
        header = _header(extra=b"", proposer_id="")
        decoded = decode_header(encode_header(header))
        assert decoded.extra == b""
        assert decoded.proposer_id == ""
        assert decoded.hash == header.hash

    def test_zero_valued_integers(self):
        header = _header(number=0, gas_used=0, timestamp=0)
        decoded = decode_header(encode_header(header))
        assert (decoded.number, decoded.gas_used, decoded.timestamp) == (0, 0, 0)

    def test_wrong_field_count_rejected(self):
        from repro.common.rlp import rlp_encode

        with pytest.raises(ValueError):
            decode_header(rlp_encode([b"\x01" * 32, 7]))


class TestTransactionCodec:
    def test_transfer_round_trip(self):
        tx = Transaction(
            sender=Address(b"\xaa" * 20),
            to=Address(b"\xbb" * 20),
            value=10**18,
            data=b"\x00\x01",
            gas_limit=21_000,
            gas_price=30,
            nonce=4,
            tag="payment",
        )
        decoded = decode_transaction(encode_transaction(tx))
        assert decoded == tx
        assert decoded.hash == tx.hash

    def test_create_round_trip_none_to(self):
        tx = Transaction(
            sender=Address(b"\xaa" * 20),
            to=None,
            value=0,
            data=b"\x60\x00",
            gas_limit=100_000,
            gas_price=1,
            nonce=0,
        )
        decoded = decode_transaction(encode_transaction(tx))
        assert decoded.to is None
        assert decoded.hash == tx.hash

    def test_empty_data_and_zero_value(self):
        tx = Transaction(
            sender=Address(b"\xaa" * 20),
            to=Address(b"\xbb" * 20),
            value=0,
            data=b"",
            gas_limit=21_000,
            gas_price=0,
            nonce=0,
        )
        decoded = decode_transaction(encode_transaction(tx))
        assert decoded.data == b""
        assert decoded.value == 0


class TestBlockCodec:
    def test_sealed_block_round_trip(self, build_chain):
        block, _ = build_chain(1)[0]
        decoded = decode_block(encode_block(block))
        assert decoded.header.hash == block.header.hash
        assert [t.hash for t in decoded.transactions] == [
            t.hash for t in block.transactions
        ]
        assert [r.encode() for r in decoded.receipts] == [
            r.encode() for r in block.receipts
        ]

    def test_profile_dropped_on_decode(self, build_chain):
        block, _ = build_chain(1)[0]
        assert block.profile is not None  # proposer blocks carry one
        assert decode_block(encode_block(block)).profile is None

    def test_verify_roundtrip_clean_block(self, build_chain):
        block, _ = build_chain(1)[0]
        assert verify_roundtrip(block) is None

    def test_encode_is_deterministic(self, build_chain):
        block, _ = build_chain(1)[0]
        assert encode_block(block) == encode_block(block)


class TestChainDigest:
    def test_digest_detects_any_difference(self, build_chain):
        blocks = [b for b, _ in build_chain(3)]
        assert chain_digest(blocks) == chain_digest(blocks)
        assert chain_digest(blocks) != chain_digest(blocks[:-1])
        assert chain_digest(blocks) != chain_digest(list(reversed(blocks)))

    def test_skip_compares_suffixes(self, build_chain):
        blocks = [b for b, _ in build_chain(3)]
        assert chain_digest(blocks, skip=1) == chain_digest(blocks[1:])
