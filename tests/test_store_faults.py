"""Storage-fault detection: every injected fault → a typed error, never silence."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.faults.storage import (
    CRASH_EVENTS,
    CrashPlan,
    corrupt_manifest,
    corrupt_snapshot_file,
    flip_log_byte,
    lose_fsync_window,
    tear_log_tail,
)
from repro.store import (
    BlockLogCorruptError,
    DiskStore,
    ManifestError,
    ReplayDivergenceError,
    SnapshotCorruptError,
    StaleManifestError,
    StoreError,
    encode_header,
    recover,
)

pytestmark = [pytest.mark.store, pytest.mark.faults]


@pytest.fixture()
def populated_dir(tmp_path, small_universe, build_chain):
    """An unsealed data dir holding 4 blocks (no compaction, no snapshot)."""
    store = DiskStore(str(tmp_path / "node"), fsync=False, snapshot_interval=0)
    chain = Blockchain(small_universe.genesis, store=store)
    store.initialize(encode_header(chain.genesis.header), small_universe.genesis)
    for block, post_state in build_chain(4):
        chain.add_block(block, post_state)
    store.close()
    return str(tmp_path / "node")


class TestTamperDetection:
    def test_interior_byte_flip_detected(self, populated_dir, small_universe):
        flip_log_byte(populated_dir, seed=3)
        # a mid-log flip is either a checksum failure (corrupt record) or,
        # if it lands on framing, a truncation the manifest contradicts —
        # both are typed, neither is silent
        with pytest.raises((BlockLogCorruptError, StaleManifestError)):
            recover(populated_dir, small_universe.genesis)

    def test_interior_length_corruption_preserved_not_truncated(
        self, populated_dir, small_universe
    ):
        """A corrupted length field below the durable horizon must raise
        BlockLogCorruptError with the log left byte-for-byte intact —
        truncating there would destroy every later (valid) record."""
        import os
        import struct

        path = os.path.join(populated_dir, "blocks.log")
        with open(path, "r+b") as fh:
            fh.seek(8)  # first record's length field, deep in the durable region
            fh.write(struct.pack("<I", 0xFFFFFFF0))
        with open(path, "rb") as fh:
            before = fh.read()
        with pytest.raises(BlockLogCorruptError):
            recover(populated_dir, small_universe.genesis)
        with open(path, "rb") as fh:
            assert fh.read() == before

    def test_torn_tail_of_sealed_bytes_detected(
        self, populated_dir, small_universe
    ):
        # shaving bytes the manifest already covers is a lost-fsync story,
        # not a healable crash tail: recovery must refuse to rewind
        tear_log_tail(populated_dir, seed=1)
        with pytest.raises(StaleManifestError):
            recover(populated_dir, small_universe.genesis)

    def test_lost_fsync_window_detected(self, populated_dir, small_universe):
        lose_fsync_window(populated_dir, records=1)
        with pytest.raises(StaleManifestError):
            recover(populated_dir, small_universe.genesis)

    def test_corrupt_snapshot_detected(
        self, tmp_path, small_universe, build_chain
    ):
        store = DiskStore(
            str(tmp_path / "node"), fsync=False, snapshot_interval=2
        )
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(
            encode_header(chain.genesis.header), small_universe.genesis
        )
        for block, post_state in build_chain(2):
            chain.add_block(block, post_state)
        store.close()
        corrupt_snapshot_file(str(tmp_path / "node"), seed=2)
        with pytest.raises(SnapshotCorruptError):
            recover(str(tmp_path / "node"), small_universe.genesis)

    def test_corrupt_manifest_detected(self, populated_dir, small_universe):
        corrupt_manifest(populated_dir)
        with pytest.raises(ManifestError):
            recover(populated_dir, small_universe.genesis)

    def test_missing_log_detected(self, populated_dir, small_universe):
        import os

        os.remove(os.path.join(populated_dir, "blocks.log"))
        with pytest.raises(StaleManifestError):
            recover(populated_dir, small_universe.genesis)

    def test_tampered_block_body_diverges_on_replay(
        self, tmp_path, small_universe, build_chain
    ):
        """A record that decodes but lies about its state root is caught."""
        import dataclasses

        from repro.chain.block import Block
        from repro.common.hashing import Hash32
        from repro.store.blocklog import BlockLog
        from repro.store.manifest import Manifest

        pairs = build_chain(2)
        store = DiskStore(str(tmp_path / "node"), fsync=False, snapshot_interval=0)
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(
            encode_header(chain.genesis.header), small_universe.genesis
        )
        chain.add_block(*pairs[0])
        store.close()

        # rewrite block 1 with a forged state root (valid CRC, valid RLP)
        data_dir = str(tmp_path / "node")
        forged_header = dataclasses.replace(
            pairs[0][0].header, state_root=Hash32(b"\xee" * 32)
        )
        forged = Block(
            forged_header, pairs[0][0].transactions, pairs[0][0].receipts
        )
        log = BlockLog(f"{data_dir}/blocks.log", fsync=False)
        log.rewrite([forged])
        size = log.size
        log.close()
        manifest = Manifest.load(data_dir)
        manifest.head_hash = bytes(forged.hash).hex()
        manifest.state_root = bytes(forged_header.state_root).hex()
        manifest.log_bytes = size
        manifest.write(data_dir, fsync=False)

        with pytest.raises(ReplayDivergenceError) as excinfo:
            recover(data_dir, small_universe.genesis)
        assert excinfo.value.height == 1

    def test_all_typed_errors_are_store_errors(self):
        for err in (
            BlockLogCorruptError,
            ManifestError,
            SnapshotCorruptError,
            StaleManifestError,
            ReplayDivergenceError,
        ):
            assert issubclass(err, StoreError)


class TestCrashPlan:
    def test_parse_round_trip(self):
        plan = CrashPlan.parse("after_append:7, torn_append:12", seed=9)
        assert plan.is_armed("after_append", 7)
        assert plan.is_armed("torn_append", 12)
        assert not plan.is_armed("after_append", 12)
        assert plan.seed == 9

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan.parse("before_breakfast:1")

    def test_from_env(self):
        env = {"REPRO_STORE_CRASH": "after_manifest:3", "REPRO_STORE_CRASH_SEED": "5"}
        plan = CrashPlan.from_env(env)
        assert plan.is_armed("after_manifest", 3)
        assert plan.seed == 5
        assert CrashPlan.from_env({}) is None

    def test_tear_bytes_seeded_and_partial(self):
        plan = CrashPlan.parse("torn_append:4", seed=11)
        cut = plan.tear_bytes(4, 500)
        assert cut == plan.tear_bytes(4, 500)  # deterministic
        assert 1 <= cut < 500  # strictly torn
        assert plan.tear_bytes(5, 500) is None  # not armed there

    def test_events_cover_the_commit_path(self):
        assert CRASH_EVENTS == (
            "torn_append",
            "after_append",
            "after_snapshot",
            "after_manifest",
            "in_compaction",
            "before_seal",
        )
