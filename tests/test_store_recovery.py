"""Recovery edge cases: fresh dirs, snapshots, forks, double restarts."""

import os

import pytest

from repro.chain.blockchain import Blockchain
from repro.store import (
    DiskStore,
    Manifest,
    StoreError,
    chain_digest,
    encode_header,
    open_store,
    recover,
)

pytestmark = pytest.mark.store


def _populate(data_dir, genesis_state, pairs, **kwargs):
    """Write ``pairs`` through a DiskStore and close it (no seal)."""
    store = DiskStore(str(data_dir), fsync=False, **kwargs)
    chain = Blockchain(genesis_state, store=store)
    store.initialize(encode_header(chain.genesis.header), genesis_state)
    for block, post_state in pairs:
        chain.add_block(block, post_state)
    store.close()
    return chain


class TestFreshDir:
    def test_empty_dir_starts_from_genesis(self, tmp_path, small_universe):
        result = recover(str(tmp_path / "empty"), small_universe.genesis)
        assert result.fresh is True
        assert result.chain.height() == 0
        assert result.replayed == 0
        assert result.chain.head.header.state_root == (
            small_universe.genesis.state_root()
        )

    def test_empty_dir_without_genesis_refused(self, tmp_path):
        with pytest.raises(StoreError):
            recover(str(tmp_path / "empty"))


class TestRoundTrip:
    def test_unsealed_dir_recovers_every_block(
        self, tmp_path, small_universe, build_chain
    ):
        pairs = build_chain(4)
        original = _populate(
            tmp_path / "node", small_universe.genesis, pairs, snapshot_interval=0
        )
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.fresh is False
        assert result.replayed == 4
        assert result.was_clean_shutdown is False  # never sealed
        assert chain_digest(result.chain.canonical_chain()) == chain_digest(
            original.canonical_chain()
        )

    def test_sealed_dir_reports_clean(self, tmp_path, small_universe, build_chain):
        store = DiskStore(str(tmp_path / "node"), fsync=False, snapshot_interval=0)
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(
            encode_header(chain.genesis.header), small_universe.genesis
        )
        for block, post_state in build_chain(2):
            chain.add_block(block, post_state)
        store.seal()
        store.close()
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.was_clean_shutdown is True
        assert result.chain.height() == 2

    def test_recovery_verifies_roots_by_reexecution(
        self, tmp_path, small_universe, build_chain
    ):
        _populate(
            tmp_path / "node",
            small_universe.genesis,
            build_chain(3),
            snapshot_interval=0,
        )
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        # every replayed block's root was re-derived, not trusted
        assert result.replayed == 3
        for block in result.chain.canonical_chain()[1:]:
            state = result.chain.state_at(block.hash)
            assert state.state_root() == block.header.state_root


class TestSnapshotBoot:
    def test_snapshot_with_no_log_tail(self, tmp_path, small_universe, build_chain):
        # snapshot lands on the final block; compaction empties the log
        pairs = build_chain(4)
        original = _populate(
            tmp_path / "node", small_universe.genesis, pairs, snapshot_interval=4
        )
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.base_height == 4
        assert result.replayed == 0
        assert result.chain.height() == 4
        assert result.chain.head.hash == original.head.hash
        assert result.chain.head.header == original.head.header

    def test_log_tail_replays_on_top_of_snapshot(
        self, tmp_path, small_universe, build_chain
    ):
        pairs = build_chain(5)
        original = _populate(
            tmp_path / "node", small_universe.genesis, pairs, snapshot_interval=2
        )
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.base_height == 4
        assert result.replayed == 1
        assert result.chain.head.hash == original.head.hash
        # the recovered suffix is byte-identical to the original's
        skip = result.base_height  # original chain includes genesis at [0]
        assert chain_digest(
            original.canonical_chain()[skip + 1 :]
        ) == chain_digest(result.chain.canonical_chain()[1:])

    def test_log_with_no_snapshot_replays_from_genesis(
        self, tmp_path, small_universe, build_chain
    ):
        _populate(
            tmp_path / "node",
            small_universe.genesis,
            build_chain(3),
            snapshot_interval=0,
        )
        # strip the snapshot reference and delete the file: recovery must
        # fall back to the supplied genesis state and replay the full log
        manifest = Manifest.load(str(tmp_path / "node"))
        os.remove(tmp_path / "node" / manifest.snapshot.file)
        manifest.snapshot = None
        manifest.write(str(tmp_path / "node"), fsync=False)
        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.base_height == 0
        assert result.replayed == 3
        assert result.chain.height() == 3


class TestForks:
    def test_abandoned_sibling_replays_as_non_head(
        self, tmp_path, small_universe, build_chain, small_generator
    ):
        from repro.core.baselines import SerialExecutor
        from repro.network.node import ProposerNode

        pairs = build_chain(2)
        store = DiskStore(str(tmp_path / "node"), fsync=False, snapshot_interval=0)
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(
            encode_header(chain.genesis.header), small_universe.genesis
        )
        chain.add_block(*pairs[0])
        # a losing sibling of block 1 from a different proposer: persisted
        # (head=False) and replayed on recovery without stealing the head
        rival = ProposerNode("rival")
        txs = small_generator.generate_block_txs()
        sealed = rival.build_block(
            chain.genesis.header, small_universe.genesis, txs
        )
        sres = SerialExecutor().execute_block(sealed.block, small_universe.genesis)
        assert chain.add_block(sealed.block, sres.post_state) is False
        chain.add_block(*pairs[1])
        store.close()

        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.replayed == 3
        assert result.chain.head.hash == chain.head.hash
        assert sealed.block.hash in result.chain
        assert result.chain.uncle_count() == 1

    def test_sibling_below_snapshot_horizon_is_skipped_not_silent(
        self, tmp_path, small_universe, build_chain, small_generator
    ):
        from repro.core.baselines import SerialExecutor
        from repro.network.node import ProposerNode

        pairs = build_chain(2)
        store = DiskStore(
            str(tmp_path / "node"),
            fsync=False,
            snapshot_interval=2,
            compact=False,  # keep the fork record in the log
        )
        chain = Blockchain(small_universe.genesis, store=store)
        store.initialize(
            encode_header(chain.genesis.header), small_universe.genesis
        )
        chain.add_block(*pairs[0])
        rival = ProposerNode("rival")
        txs = small_generator.generate_block_txs()
        sealed = rival.build_block(
            chain.genesis.header, small_universe.genesis, txs
        )
        sres = SerialExecutor().execute_block(sealed.block, small_universe.genesis)
        chain.add_block(sealed.block, sres.post_state)
        chain.add_block(*pairs[1])  # height 2 → snapshot at horizon 2
        store.close()

        result = recover(str(tmp_path / "node"), small_universe.genesis)
        assert result.base_height == 2
        assert result.replayed == 0
        # all three records fall at/below the horizon: recorded, not lost
        assert len(result.skipped) == 3
        assert result.chain.head.hash == chain.head.hash


class TestDoubleRestart:
    def test_recover_twice_is_idempotent(
        self, tmp_path, small_universe, build_chain
    ):
        _populate(
            tmp_path / "node",
            small_universe.genesis,
            build_chain(4),
            snapshot_interval=2,
        )
        first = recover(str(tmp_path / "node"), small_universe.genesis)
        first_digest = chain_digest(first.chain.canonical_chain()[1:])
        first.log.close()
        second = recover(str(tmp_path / "node"), small_universe.genesis)
        assert second.chain.head.hash == first.chain.head.hash
        assert chain_digest(second.chain.canonical_chain()[1:]) == first_digest
        assert second.replayed == first.replayed
        assert second.healed == []

    def test_open_store_resume_then_extend(
        self, tmp_path, small_universe, build_chain
    ):
        pairs = build_chain(4)
        _populate(
            tmp_path / "node",
            small_universe.genesis,
            pairs[:2],
            snapshot_interval=0,
        )
        chain, store, result = open_store(
            str(tmp_path / "node"),
            small_universe.genesis,
            snapshot_interval=0,
            fsync=False,
        )
        assert result.replayed == 2
        for block, post_state in pairs[2:]:
            chain.add_block(block, post_state)
        store.seal()
        store.close()
        final = recover(str(tmp_path / "node"), small_universe.genesis)
        assert final.chain.height() == 4
        assert final.was_clean_shutdown is True
