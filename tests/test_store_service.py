"""Kill-and-resume differential: `python -m repro serve` as a subprocess.

The central acceptance test of the durability engine: a run killed at
seeded crash points and resumed must converge on a chain byte-identical
to one produced by an uninterrupted run — witnessed by the manifest's
head hash, which transitively commits to every header, transaction and
receipt before it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.store

REPO_ROOT = Path(__file__).resolve().parents[1]
SERVE_ARGS = ["--txs-per-block", "12"]
TARGET = "8"


def _serve(data_dir, *extra, crash=None, check=True, seed=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_STORE_CRASH", None)
    if crash:
        env["REPRO_STORE_CRASH"] = crash
    seed_args = ["--seed", str(seed)] if seed is not None else []
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            *SERVE_ARGS,
            *seed_args,
            "serve",
            "--data-dir",
            str(data_dir),
            "--snapshot-interval",
            "4",
            "--no-fsync",
            *extra,
        ],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=180,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"serve failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def _manifest(data_dir):
    with open(Path(data_dir) / "manifest.json", encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """The uninterrupted reference run every resume must converge on."""
    data_dir = tmp_path_factory.mktemp("golden") / "node"
    _serve(data_dir, "--blocks", TARGET)
    return _manifest(data_dir)


class TestServeLifecycle:
    def test_reaches_target_and_seals(self, tmp_path, golden):
        data_dir = tmp_path / "node"
        proc = _serve(data_dir, "--blocks", TARGET)
        assert "sealed=True" in proc.stdout
        manifest = _manifest(data_dir)
        assert manifest["height"] == int(TARGET)
        assert manifest["clean"] is True
        assert manifest["headHash"] == golden["headHash"]

    def test_restart_of_sealed_dir_is_noop_run(self, tmp_path, golden):
        data_dir = tmp_path / "node"
        _serve(data_dir, "--blocks", TARGET)
        proc = _serve(data_dir, "--blocks", TARGET)
        assert "produced=0" in proc.stdout
        assert _manifest(data_dir)["headHash"] == golden["headHash"]

    def test_config_mismatch_refused(self, tmp_path):
        data_dir = tmp_path / "node"
        _serve(data_dir, "--blocks", "4")
        proc = _serve(data_dir, "--blocks", TARGET, seed=7, check=False)
        assert proc.returncode != 0
        assert "ConfigMismatch" in proc.stderr


class TestKillAndResume:
    @pytest.mark.parametrize(
        "crash",
        [
            "after_append:3",
            "torn_append:5",
            "after_snapshot:4",
            "after_manifest:6",
            "in_compaction:4",  # stale new-generation file left for the retry
            "after_append:2,torn_append:6",  # two kills, two resumes
        ],
    )
    def test_resumed_chain_is_byte_identical(self, tmp_path, golden, crash):
        data_dir = tmp_path / "node"
        points = crash.split(",")
        survivors = list(points)
        # each run consumes (at most) the earliest remaining crash point
        while survivors:
            proc = _serve(
                data_dir, "--blocks", TARGET, crash=",".join(survivors), check=False
            )
            assert proc.returncode == 137, proc.stderr
            survivors.pop(0)
        final = _serve(data_dir, "--blocks", TARGET)
        assert "sealed=True" in final.stdout
        manifest = _manifest(data_dir)
        assert manifest["height"] == int(TARGET)
        assert manifest["headHash"] == golden["headHash"]
        assert manifest["stateRoot"] == golden["stateRoot"]

    def test_crash_before_seal_resumes_clean(self, tmp_path, golden):
        data_dir = tmp_path / "node"
        proc = _serve(
            data_dir, "--blocks", TARGET, crash="before_seal:8", check=False
        )
        assert proc.returncode == 137
        # all 8 blocks are durable; the resume only needs to seal
        final = _serve(data_dir, "--blocks", TARGET)
        assert "produced=0" in final.stdout
        assert _manifest(data_dir)["headHash"] == golden["headHash"]


class TestSignals:
    def _spawn_unbounded(self, data_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_STORE_CRASH", None)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                *SERVE_ARGS,
                "serve",
                "--data-dir",
                str(data_dir),
                "--snapshot-interval",
                "4",
                "--no-fsync",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def _wait_for_height(self, data_dir, height, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if _manifest(data_dir)["height"] >= height:
                    return
            except (OSError, json.JSONDecodeError, KeyError):
                pass
            time.sleep(0.1)
        raise AssertionError(f"height {height} not reached within {timeout}s")

    @pytest.mark.parametrize(
        "signum,expected_code",
        [(signal.SIGINT, 130), (signal.SIGTERM, 0)],
    )
    def test_signal_seals_and_exits(self, tmp_path, signum, expected_code):
        data_dir = tmp_path / "node"
        proc = self._spawn_unbounded(data_dir)
        try:
            self._wait_for_height(data_dir, 2)
            proc.send_signal(signum)
            stdout, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == expected_code
        assert "sealed=True" in stdout
        assert _manifest(data_dir)["clean"] is True


class TestKeyboardInterruptSatellite:
    def test_non_serve_command_exits_130(self):
        """Any command dying on KeyboardInterrupt maps to 130 + summary."""
        code = (
            "import repro.__main__ as m\n"
            "m.COMMANDS['demo'] = lambda args: (_ for _ in ()).throw(KeyboardInterrupt())\n"
            "import sys\n"
            "sys.exit(m.main(['demo']))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 130
        assert "interrupted" in proc.stderr
        assert "demo" in proc.stderr
