"""Serve soak: long run, seeded SIGKILL/resume cycles, golden differential.

Env-tunable so the CI soak job can scale it up without code changes:

* ``REPRO_SOAK_BLOCKS`` — target chain height (default 40 locally,
  5000 in the CI soak job);
* ``REPRO_SOAK_KILLS``  — number of kill/resume cycles (default 3);
* ``REPRO_SOAK_SEED``   — seed for picking kill heights (default 1).

Each cycle arms one ``after_append``/``torn_append`` crash point at a
seeded height (``os._exit(137)`` — indistinguishable from SIGKILL) and
resumes; the final run must seal at the target with a head hash equal to
an uninterrupted golden run's.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.store, pytest.mark.soak, pytest.mark.slow]

REPO_ROOT = Path(__file__).resolve().parents[1]

BLOCKS = int(os.environ.get("REPRO_SOAK_BLOCKS", "40"))
KILLS = int(os.environ.get("REPRO_SOAK_KILLS", "3"))
SEED = int(os.environ.get("REPRO_SOAK_SEED", "1"))


def _serve(data_dir, *, crash=None, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_STORE_CRASH", None)
    if crash:
        env["REPRO_STORE_CRASH"] = crash
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "--txs-per-block",
            "12",
            "serve",
            "--data-dir",
            str(data_dir),
            "--blocks",
            str(BLOCKS),
            "--snapshot-interval",
            "16",
            "--no-fsync",
        ],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=3600,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            f"serve failed ({proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def _manifest(data_dir):
    with open(Path(data_dir) / "manifest.json", encoding="utf-8") as fh:
        return json.load(fh)


def test_soak_kill_resume_matches_uninterrupted_golden(tmp_path):
    golden_dir = tmp_path / "golden"
    _serve(golden_dir)
    golden = _manifest(golden_dir)
    assert golden["height"] == BLOCKS

    rng = random.Random(SEED)
    # seeded, strictly increasing kill heights spread over the run
    kill_heights = sorted(rng.sample(range(2, BLOCKS), KILLS))
    victim_dir = tmp_path / "victim"
    for index, height in enumerate(kill_heights):
        event = "torn_append" if index % 2 else "after_append"
        proc = _serve(victim_dir, crash=f"{event}:{height}", check=False)
        assert proc.returncode == 137, (
            f"kill {index} at {event}:{height} exited "
            f"{proc.returncode}:\n{proc.stderr}"
        )

    final = _serve(victim_dir)
    assert "sealed=True" in final.stdout
    manifest = _manifest(victim_dir)
    assert manifest["height"] == BLOCKS
    assert manifest["headHash"] == golden["headHash"], (
        "kill-and-resume chain diverged from the uninterrupted golden:\n"
        f"golden root {golden['stateRoot']}\nvictim root {manifest['stateRoot']}"
    )
    assert manifest["stateRoot"] == golden["stateRoot"]
    assert manifest["clean"] is True
