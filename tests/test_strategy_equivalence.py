"""Cross-strategy equivalence: one workload, three engines, one answer.

What "equivalent" means here, precisely:

* On **commutative workloads** (plain value transfers — the final state
  is order-independent): identical committed transaction sets, identical
  per-transaction receipts, and identical final state roots across
  ``occ-wsi | two-phase | block-stm``, on every execution backend.
* On **arbitrary workloads** (contract calls whose storage writes are
  order-dependent): each strategy is individually serializable — its own
  commit order replayed serially reproduces its own root — and all
  strategies commit the same transaction set.  Roots may legitimately
  differ: OCC-WSI commits in discovery order, the other two in (mostly)
  preset order, and both are valid serializations.
"""

import pytest

from repro.common.types import Address
from repro.core.occ_wsi import ProposerConfig
from repro.core.strategies import STRATEGY_CHOICES, build_proposer
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.account import AccountData
from repro.state.statedb import StateDB, genesis_snapshot
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

pytestmark = pytest.mark.blockstm

ETHER = 10**18
CTX = ExecutionContext(block_number=1, timestamp=12)


def propose(strategy, base, txs, lanes=8, backend=None):
    pool = TxPool()
    pool.add_many(sorted(txs, key=lambda t: t.nonce))
    engine = build_proposer(
        ProposerConfig(lanes=lanes, strategy=strategy, strict_checks=True),
        backend=backend,
    )
    return engine.propose(base, pool, CTX)


def receipts_by_hash(result):
    return {
        bytes(c.tx.hash): (c.result.success, c.result.gas_used, c.result.fee)
        for c in result.committed
    }


def commutative_workload(n=14, hot_share=0.5):
    """Plain transfers, half aimed at one hot receiver: contended but
    order-independent (sums commute)."""
    eoas = [Address.from_int(0x300 + i) for i in range(n + 2)]
    base = genesis_snapshot({a: AccountData(balance=ETHER) for a in eoas})
    hot = eoas[-1]
    txs = []
    for i in range(n):
        to = hot if i < n * hot_share else eoas[(i + 1) % n]
        txs.append(Transaction(eoas[i], to, 100 + i, b"", 60_000, 10, 0))
    return base, txs


class TestCommutativeEquivalence:
    def test_roots_receipts_and_sets_match(self):
        base, txs = commutative_workload()
        results = {s: propose(s, base, txs) for s in STRATEGY_CHOICES}
        roots = {
            s: bytes(r.final_state(coinbase=CTX.coinbase).state_root())
            for s, r in results.items()
        }
        assert len(set(roots.values())) == 1, roots
        receipt_maps = [receipts_by_hash(r) for r in results.values()]
        assert receipt_maps[0] == receipt_maps[1] == receipt_maps[2]
        committed_sets = {
            s: frozenset(bytes(c.tx.hash) for c in r.committed)
            for s, r in results.items()
        }
        assert len(set(committed_sets.values())) == 1

    @pytest.mark.slow
    def test_equivalent_on_every_backend(self):
        from repro.exec import get_backend

        base, txs = commutative_workload(n=10)
        want = None
        for strategy in STRATEGY_CHOICES:
            for name in (None, "serial", "thread"):
                backend = get_backend(name or "sim", 2)
                try:
                    result = propose(strategy, base, txs, lanes=4, backend=backend)
                    root = bytes(
                        result.final_state(coinbase=CTX.coinbase).state_root()
                    )
                    if want is None:
                        want = (root, receipts_by_hash(result))
                    else:
                        assert (root, receipts_by_hash(result)) == want, (
                            strategy,
                            name,
                        )
                finally:
                    if backend is not None:
                        backend.close()


class TestArbitraryWorkloadEquivalence:
    def replay(self, base, committed):
        db = StateDB(base)
        evm = EVM()
        for c in committed:
            evm.apply_transaction(db, c.tx, CTX)
        return db.commit()

    def test_each_strategy_serializable_same_committed_set(
        self, small_universe, small_generator
    ):
        txs = small_generator.generate_block_txs()
        sets = {}
        for strategy in STRATEGY_CHOICES:
            result = propose(strategy, small_universe.genesis, txs, lanes=16)
            # own commit order replayed serially == own materialised state
            assert (
                self.replay(small_universe.genesis, result.committed).state_root()
                == result.final_state().state_root()
            ), strategy
            sets[strategy] = frozenset(bytes(c.tx.hash) for c in result.committed)
        assert len(set(sets.values())) == 1, {s: len(v) for s, v in sets.items()}

    def test_deterministic_per_strategy(self, small_universe, small_generator):
        txs = small_generator.generate_block_txs()
        for strategy in STRATEGY_CHOICES:
            r1 = propose(strategy, small_universe.genesis, txs)
            r2 = propose(strategy, small_universe.genesis, txs)
            assert [c.tx.hash for c in r1.committed] == [
                c.tx.hash for c in r2.committed
            ]
            assert r1.stats.makespan == r2.stats.makespan
            assert (
                r1.final_state().state_root() == r2.final_state().state_root()
            )


class TestHotspotProperties:
    """Seeded hotspot sweeps: ESTIMATE/suspend bookkeeping invariants."""

    def hotspot(self, seed, n=16):
        import random

        rng = random.Random(seed)
        eoas = [Address.from_int(0x400 + i) for i in range(n + 4)]
        base = genesis_snapshot({a: AccountData(balance=ETHER) for a in eoas})
        hot = eoas[-1]
        txs = [
            Transaction(
                eoas[i],
                hot if rng.random() < 0.75 else eoas[rng.randrange(n)],
                rng.randrange(50, 500),
                b"",
                60_000,
                10,
                0,
            )
            for i in range(n)
        ]
        return base, txs

    def test_suspend_invariants_over_seeds(self):
        for seed in range(8):
            base, txs = self.hotspot(seed)
            result = propose("block-stm", base, txs, lanes=8)
            extra = result.stats.extra
            assert len(result.committed) == len(txs)
            # every suspension belongs to an execution attempt that later
            # re-ran; executions = commits + validation aborts
            assert result.stats.tasks == len(result.committed) + result.stats.aborts
            # convergence stayed shallow: incarnations are bounded by the
            # abort count, and waves by executions
            assert extra["max_incarnation"] <= max(1, result.stats.aborts)
            assert extra["waves"] <= result.stats.tasks + extra["suspensions"] + 1

    def test_blockstm_wastes_less_than_occ_under_hotspot(self):
        total_stm = total_occ = 0.0
        for seed in range(4):
            base, txs = self.hotspot(seed)
            stm = propose("block-stm", base, txs, lanes=8)
            occ = propose("occ-wsi", base, txs, lanes=8)
            total_stm += stm.stats.total_work
            total_occ += occ.stats.total_work
        assert total_stm <= total_occ
