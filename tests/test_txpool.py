"""Transaction and pool tests: priority, nonce ordering, OCC abort flow."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import Address
from repro.txpool.pool import TxPool
from repro.txpool.transaction import Transaction

A = Address.from_int(1)
B = Address.from_int(2)
C = Address.from_int(3)


def tx(sender, nonce=0, price=10, tag=""):
    return Transaction(
        sender=sender,
        to=Address.from_int(99),
        value=0,
        data=b"",
        gas_limit=21000,
        gas_price=price,
        nonce=nonce,
        tag=tag,
    )


class TestTransaction:
    def test_hash_stable_and_distinct(self):
        t1 = tx(A, 0, 10)
        t2 = tx(A, 0, 10)
        t3 = tx(A, 1, 10)
        assert t1.hash == t2.hash
        assert t1.hash != t3.hash

    def test_tag_not_in_hash_or_equality(self):
        assert tx(A, tag="x").hash == tx(A, tag="y").hash
        assert tx(A, tag="x") == tx(A, tag="y")

    def test_validation(self):
        with pytest.raises(ValueError):
            Transaction(A, B, -1, b"", 21000, 1, 0)
        with pytest.raises(ValueError):
            Transaction(A, B, 0, b"", 0, 1, 0)
        with pytest.raises(ValueError):
            Transaction(A, B, 0, b"", 21000, -1, 0)
        with pytest.raises(ValueError):
            Transaction(A, B, 0, b"", 21000, 1, -1)

    def test_is_create(self):
        assert Transaction(A, None, 0, b"\x00", 60000, 1, 0).is_create
        assert not tx(A).is_create


class TestPoolPriority:
    def test_highest_gas_price_first(self):
        pool = TxPool()
        pool.add(tx(A, price=10))
        pool.add(tx(B, price=50))
        pool.add(tx(C, price=30))
        assert pool.pop_best().gas_price == 50

    def test_fifo_among_equal_prices(self):
        pool = TxPool()
        first = tx(A, price=10)
        second = tx(B, price=10)
        pool.add(first)
        pool.add(second)
        assert pool.pop_best() is first

    def test_empty_pool_pops_none(self):
        assert TxPool().pop_best() is None

    def test_len_tracks_all_queued(self):
        pool = TxPool()
        pool.add(tx(A, 0))
        pool.add(tx(A, 1))
        pool.add(tx(B, 0))
        assert len(pool) == 3


class TestNonceOrdering:
    def test_later_nonce_parked_until_packed(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=1))
        pool.add(tx(A, 1, price=100))  # higher price but later nonce
        t = pool.pop_best()
        assert t.nonce == 0
        assert pool.pop_best() is None  # nonce 1 not ready yet
        pool.mark_packed(t)
        assert pool.pop_best().nonce == 1

    def test_duplicate_nonce_same_price_rejected(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        with pytest.raises(ValueError, match="underpriced"):
            pool.add(tx(A, 0, price=10))

    def test_underpriced_replacement_rejected(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=100))
        with pytest.raises(ValueError, match="underpriced"):
            pool.add(tx(A, 0, price=105))  # < 10% bump

    def test_nonce_below_ready_rejected(self):
        pool = TxPool()
        pool.add(tx(A, 5))
        t = pool.pop_best()
        pool.mark_packed(t)
        with pytest.raises(ValueError):
            pool.add(tx(A, 4))

    def test_out_of_order_arrival_same_batch(self):
        pool = TxPool()
        pool.add(tx(A, 1))
        # nonce 1 arrived first: it is parked, nothing ready... adding
        # nonce 0 later is below the recorded ready nonce? No: nonce 1 was
        # never promoted because ready nonce was initialised to 1.
        assert pool.pop_best().nonce == 1


class TestOCCFlow:
    def test_push_back_requeues(self):
        pool = TxPool()
        t = tx(A, price=10)
        pool.add(t)
        popped = pool.pop_best()
        pool.push_back(popped)
        assert len(pool) == 1
        assert pool.pop_best() is t

    def test_push_back_requires_in_flight(self):
        pool = TxPool()
        t = tx(A)
        pool.add(t)
        with pytest.raises(ValueError):
            pool.push_back(t)  # never popped

    def test_mark_packed_decrements(self):
        pool = TxPool()
        pool.add(tx(A))
        t = pool.pop_best()
        pool.mark_packed(t)
        assert len(pool) == 0

    def test_sender_serialised_while_in_flight(self):
        pool = TxPool()
        pool.add(tx(A, 0))
        pool.add(tx(A, 1))
        t0 = pool.pop_best()
        # nonce 1 must not surface while nonce 0 is in flight
        assert pool.pop_best() is None
        pool.push_back(t0)
        assert pool.pop_best() is t0

    def test_drop_discards_successors(self):
        pool = TxPool()
        pool.add(tx(A, 0))
        pool.add(tx(A, 1))
        pool.add(tx(A, 2))
        t = pool.pop_best()
        pool.drop(t)
        assert len(pool) == 0
        assert pool.pop_best() is None

    def test_replace_by_fee_promoted(self):
        pool = TxPool()
        original = tx(A, 0, price=10)
        pool.add(original)
        replacement = tx(A, 0, price=20, tag="rbf")
        pool.add(replacement)
        assert len(pool) == 1
        popped = pool.pop_best()
        assert popped is replacement
        pool.mark_packed(popped)
        assert len(pool) == 0

    def test_replace_by_fee_parked(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.add(tx(A, 1, price=10))  # parked behind nonce 0
        pool.add(tx(A, 1, price=50))  # replaces the parked one
        t0 = pool.pop_best()
        pool.mark_packed(t0)
        assert pool.pop_best().gas_price == 50

    def test_in_flight_cannot_be_replaced(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.pop_best()  # now executing
        with pytest.raises(ValueError, match="executing"):
            pool.add(tx(A, 0, price=100))

    def test_replacement_does_not_leak_cancelled_entries(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.add(tx(A, 0, price=20))
        pool.add(tx(A, 0, price=40))
        assert len(pool) == 1
        pool.check_invariants()
        t = pool.pop_best()
        assert t.gas_price == 40
        pool.mark_packed(t)
        assert pool.pop_best() is None
        pool.check_invariants()

    def test_has_ready_ignores_cancelled(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.add(tx(A, 0, price=20))
        assert pool.has_ready()
        pool.check_invariants()
        pool.pop_best()
        assert not pool.has_ready()
        pool.check_invariants()

    def test_has_ready(self):
        pool = TxPool()
        assert not pool.has_ready()
        pool.add(tx(A))
        assert pool.has_ready()
        pool.pop_best()
        assert not pool.has_ready()

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_drain_preserves_sender_nonce_order(self, spec):
        """Popping + packing everything yields per-sender nonces in order."""
        pool = TxPool()
        nonces = {}
        for sender_i, price in spec:
            sender = Address.from_int(sender_i + 10)
            nonce = nonces.get(sender, 0)
            nonces[sender] = nonce + 1
            pool.add(tx(sender, nonce, price))
        seen = {}
        while True:
            t = pool.pop_best()
            if t is None:
                break
            assert t.nonce == seen.get(t.sender, 0)
            seen[t.sender] = t.nonce + 1
            pool.mark_packed(t)
        assert seen == nonces


class TestRestore:
    """Exactly-once return of rejected-block transactions (fork cleanup)."""

    def test_restore_reenters_pool(self):
        pool = TxPool()
        t = tx(A, 0)
        assert pool.restore(t)
        assert pool.contains(t.hash)
        assert len(pool) == 1

    def test_restore_is_idempotent(self):
        pool = TxPool()
        t = tx(A, 0)
        assert pool.restore(t)
        assert not pool.restore(t)  # already queued
        assert len(pool) == 1

    def test_restore_across_fork_siblings_once(self):
        """Two rejected siblings carry the same tx: it re-enters once."""
        pool = TxPool()
        shared = tx(A, 0, price=15)
        sibling_a = [shared, tx(B, 0)]
        sibling_b = [shared, tx(C, 0)]
        restored = pool.restore_many(sibling_a) + pool.restore_many(sibling_b)
        assert restored == 3  # shared counted once
        assert len(pool) == 3

    def test_restore_skips_already_packed_nonce(self):
        """A tx whose nonce a committed block consumed must stay out."""
        pool = TxPool()
        t0 = tx(A, 0)
        pool.add(t0)
        popped = pool.pop_best()
        pool.mark_packed(popped)  # nonce 0 committed
        assert not pool.restore(t0)
        assert not pool.restore(tx(A, 0, price=99))  # same nonce, any price
        assert len(pool) == 0

    def test_restore_skips_in_flight(self):
        pool = TxPool()
        t0 = tx(A, 0)
        pool.add(t0)
        pool.pop_best()  # t0 now in flight
        assert not pool.restore(t0)
        assert pool.in_flight_count() == 1

    def test_restore_later_nonce_parks(self):
        """Restoring nonce 1 while 0 is committed promotes it to ready."""
        pool = TxPool()
        pool.add(tx(A, 0))
        popped = pool.pop_best()
        pool.mark_packed(popped)
        assert pool.restore(tx(A, 1))
        ready = pool.pop_best()
        assert ready is not None and ready.nonce == 1

    def test_contains_covers_parked_and_ready(self):
        pool = TxPool()
        t0, t1 = tx(A, 0), tx(A, 1)
        pool.add(t0)
        pool.add(t1)  # t1 parked behind t0
        assert pool.contains(t0.hash) and pool.contains(t1.hash)
        assert not pool.contains(tx(B, 0).hash)


class TestReplaceByFeeBoundary:
    """Regression for the RBF off-by-one: the documented threshold is
    ``old + old*10//100`` *inclusive* (geth semantics).  The pre-fix
    ``_check_bump`` used ``<= threshold`` and rejected a bid priced exactly
    at +10%."""

    def test_exact_bump_threshold_accepted_promoted(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=100))
        replacement = tx(A, 0, price=110)  # exactly old + old*10//100
        pool.add(replacement)  # raised ValueError before the fix
        assert pool.pop_best() is replacement

    def test_exact_bump_threshold_accepted_parked(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.add(tx(A, 1, price=100))  # parked behind nonce 0
        pool.add(tx(A, 1, price=110))  # raised ValueError before the fix
        t0 = pool.pop_best()
        pool.mark_packed(t0)
        assert pool.pop_best().gas_price == 110

    def test_one_below_threshold_rejected(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=100))
        with pytest.raises(ValueError, match="underpriced"):
            pool.add(tx(A, 0, price=109))

    def test_zero_bump_still_requires_strict_increase(self):
        # tiny prices: the integer bump rounds to zero, so the threshold
        # equals the old price — equality must still be rejected
        pool = TxPool()
        pool.add(tx(A, 0, price=5))
        with pytest.raises(ValueError, match="underpriced"):
            pool.add(tx(A, 0, price=5))
        pool.add(tx(A, 0, price=6))  # >= threshold (5) and > old
        assert pool.pop_best().gas_price == 6


class TestIndexAndCompaction:
    """The hot-path index layer: O(1) contains/has_ready, lazy-cancelled
    compaction, and the re-derived invariants that specify them."""

    def test_cancelled_hash_never_reported(self):
        pool = TxPool()
        old = tx(A, 0, price=10)
        pool.add(old)
        pool.add(tx(A, 0, price=20))
        assert not pool.contains(old.hash)
        pool.check_invariants()
        # a cancelled entry must not block a fork-cleanup restore either
        assert not pool.restore(old)  # stale: live replacement queued

    def test_compaction_triggers_under_rbf_churn(self):
        pool = TxPool()
        # distinct senders keep the heap populated while sender A churns
        for i in range(8):
            pool.add(tx(Address.from_int(50 + i), 0, price=1))
        price = 100
        pool.add(tx(A, 0, price=price))
        for _ in range(12):
            price += price * 10 // 100  # always exactly at threshold
            pool.add(tx(A, 0, price=price))
            pool.check_invariants()
        assert pool.compactions > 0
        # post-compaction: everything still pops in price order, once
        popped = []
        while True:
            t = pool.pop_best()
            if t is None:
                break
            popped.append(t)
            pool.mark_packed(t)
        assert len(popped) == 9
        assert popped[0].sender == A and popped[0].gas_price == price

    def test_compaction_counter_metric(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        pool = TxPool(metrics=metrics)
        pool.add(tx(A, 0, price=100))
        for price in (110, 121, 134):
            pool.add(tx(A, 0, price=price))
        snap = metrics.snapshot()
        assert snap["counters"]["txpool.replacements"] == 3
        assert snap["counters"]["txpool.compactions"] == pool.compactions > 0

    def test_live_counter_tracks_heap(self):
        pool = TxPool()
        pool.add(tx(A, 0, price=10))
        pool.add(tx(B, 0, price=20))
        assert pool.has_ready()
        a = pool.pop_best()
        assert pool.has_ready()  # B still live
        b = pool.pop_best()
        assert not pool.has_ready()
        pool.push_back(a)
        assert pool.has_ready()
        pool.check_invariants()
        pool.mark_packed(b)
        pool.check_invariants()
