"""Seeded randomized interleavings of the TxPool operation set.

Every operation is followed by ``TxPool.check_invariants()`` — the O(n)
re-derivation of the hash index, live-ready counter, ready-entry map and
compaction bound that specifies the pool's O(1) hot paths — plus checks
against an independent model of what should be queued.  Sequences mix
``add`` (fresh nonces and RBF at/below/above the bump threshold),
``pop_best``, ``push_back``, ``mark_packed``, ``drop`` and fork-style
``restore``, so index bookkeeping is exercised across every transition.
"""

import random

import pytest

from repro.common.types import Address
from repro.txpool.pool import PRICE_BUMP_PERCENT, TxPool
from repro.txpool.transaction import Transaction

SENDERS = [Address.from_int(100 + i) for i in range(6)]


def tx(sender, nonce, price, tag=""):
    return Transaction(
        sender=sender,
        to=Address.from_int(7),
        value=0,
        data=b"",
        gas_limit=21000,
        gas_price=price,
        nonce=nonce,
        tag=tag,
    )


def bump_threshold(price):
    return price + price * PRICE_BUMP_PERCENT // 100


class PoolModel:
    """Independent bookkeeping of what must be queued or in flight."""

    def __init__(self):
        self.queued = {}  # (sender, nonce) -> tx  (parked | ready | in flight)
        self.in_flight = {}  # sender -> tx
        self.next_nonce = {s: 0 for s in SENDERS}  # next fresh nonce per sender
        self.packed = []  # committed txs, in commit order
        self.dropped = []  # invalidated txs (drop cascades)
        # mirror of the pool's per-sender ready-nonce record: set on first
        # add, advanced by mark_packed, *erased* by drop (pool semantics:
        # a dropped sender's history is forgotten)
        self.ready_nonce = {}

    def hashes(self):
        return {t.hash for t in self.queued.values()}

    def min_queued_nonce(self, sender):
        nonces = [n for (s, n) in self.queued if s == sender]
        return min(nonces) if nonces else None

    def note_add(self, t):
        self.queued[(t.sender, t.nonce)] = t
        if t.sender not in self.ready_nonce:
            self.ready_nonce[t.sender] = t.nonce

    def expected_restore(self, t):
        """Mirror TxPool.restore's decision from model state alone."""
        if t.hash in self.hashes():
            return False  # still queued or in flight (fork-sibling dup)
        floor = self.ready_nonce.get(t.sender)
        if floor is not None and t.nonce < floor:
            return False  # a committed block already consumed this nonce
        old = self.queued.get((t.sender, t.nonce))
        if old is not None:  # same nonce queued under a different hash: RBF
            if self.in_flight.get(t.sender) is old:
                return False
            threshold = bump_threshold(old.gas_price)
            return t.gas_price >= threshold and t.gas_price > old.gas_price
        return True


def check(pool, model):
    pool.check_invariants()
    assert len(pool) == len(model.queued)
    assert pool.in_flight_count() == len(model.in_flight)
    for t in model.queued.values():
        assert pool.contains(t.hash)
    for t in model.packed[-3:] + model.dropped[-3:]:
        if t.hash not in model.hashes():  # same tx may have been restored
            assert not pool.contains(t.hash)


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
def test_random_interleaving_preserves_invariants(seed):
    rng = random.Random(seed)
    pool = TxPool()
    model = PoolModel()

    for step in range(300):
        op = rng.choice(
            ["add", "add", "add", "rbf", "pop", "push_back", "pack", "drop", "restore"]
        )
        if op == "add":
            sender = rng.choice(SENDERS)
            nonce = model.next_nonce[sender]
            t = tx(sender, nonce, rng.randint(1, 1000), tag=f"s{step}")
            pool.add(t)
            model.note_add(t)
            model.next_nonce[sender] = nonce + 1
        elif op == "rbf":
            candidates = [
                (s, n)
                for (s, n), old in model.queued.items()
                if model.in_flight.get(s) is not old
            ]
            if not candidates:
                continue
            sender, nonce = rng.choice(candidates)
            old = model.queued[(sender, nonce)]
            threshold = bump_threshold(old.gas_price)
            # exercise the boundary: below, exactly at, and above threshold
            price = rng.choice([threshold - 1, threshold, threshold + 5])
            t = tx(sender, nonce, price, tag=f"rbf{step}")
            if price >= threshold and price > old.gas_price:
                pool.add(t)
                model.queued[(sender, nonce)] = t
            else:
                with pytest.raises(ValueError, match="underpriced"):
                    pool.add(t)
        elif op == "pop":
            t = pool.pop_best()
            if t is None:
                # nothing ready: every queued tx is parked or in flight
                assert not pool.has_ready()
                continue
            assert model.in_flight.get(t.sender) is None
            assert t.nonce == model.min_queued_nonce(t.sender)
            assert model.queued[(t.sender, t.nonce)] is t
            model.in_flight[t.sender] = t
        elif op == "push_back":
            if not model.in_flight:
                continue
            sender = rng.choice(sorted(model.in_flight, key=bytes))
            t = model.in_flight.pop(sender)
            pool.push_back(t)
        elif op == "pack":
            if not model.in_flight:
                continue
            sender = rng.choice(sorted(model.in_flight, key=bytes))
            t = model.in_flight.pop(sender)
            pool.mark_packed(t)
            del model.queued[(sender, t.nonce)]
            model.packed.append(t)
            model.ready_nonce[sender] = t.nonce + 1
        elif op == "drop":
            if not model.in_flight:
                continue
            sender = rng.choice(sorted(model.in_flight, key=bytes))
            t = model.in_flight.pop(sender)
            pool.drop(t)
            for key in [k for k in model.queued if k[0] == sender]:
                model.dropped.append(model.queued.pop(key))
            model.ready_nonce.pop(sender, None)
        elif op == "restore":
            bucket = rng.random()
            if bucket < 0.4 and model.packed:
                t = rng.choice(model.packed)
            elif bucket < 0.7 and model.queued:
                # fork siblings carrying a queued tx: exactly-once
                t = rng.choice(sorted(model.queued.values(), key=lambda x: x.hash))
            elif model.dropped:
                t = model.dropped[-1]
            else:
                continue
            expected = model.expected_restore(t)
            assert pool.restore(t) == expected
            if expected:
                if model.dropped and model.dropped[-1] is t:
                    model.dropped.pop()
                model.note_add(t)
                mine = [n for (s, n) in model.queued if s == t.sender]
                if max(mine) == t.nonce:
                    # keep future fresh nonces contiguous with the restored
                    # one — otherwise later adds park behind a permanent
                    # gap (valid pool state, but the drain below expects
                    # every queued tx to eventually become ready)
                    model.next_nonce[t.sender] = t.nonce + 1
        check(pool, model)

    # drain: everything reachable must come out in per-sender nonce order
    for sender, t in list(model.in_flight.items()):
        pool.push_back(t)
        model.in_flight.pop(sender)
    check(pool, model)
    drained_floor = {}
    while True:
        t = pool.pop_best()
        if t is None:
            break
        assert t.nonce == model.min_queued_nonce(t.sender)
        pool.mark_packed(t)
        del model.queued[(t.sender, t.nonce)]
        drained_floor[t.sender] = t.nonce + 1
        check(pool, model)
    # anything left behind is gap-parked: a drop/restore interleaving left
    # a nonce hole below it, so it can never become ready (pool semantics —
    # geth holds such txs until timeout).  It must still be indexed, just
    # never reported ready.
    assert not pool.has_ready()
    assert len(pool) == len(model.queued)
    for (sender, nonce), t in model.queued.items():
        assert pool.contains(t.hash)
        assert nonce > drained_floor.get(sender, -1)
    pool.check_invariants()


@pytest.mark.parametrize("seed", [3, 11])
def test_rbf_churn_interleaving_compacts(seed):
    """Heavy replace-by-fee churn on a populated heap triggers compaction
    mid-interleaving without disturbing any invariant."""
    rng = random.Random(seed)
    pool = TxPool()
    for i, sender in enumerate(SENDERS):
        pool.add(tx(sender, 0, 10 + i))
    prices = {sender: 10 + i for i, sender in enumerate(SENDERS)}
    for _ in range(40):
        sender = rng.choice(SENDERS)
        prices[sender] = bump_threshold(prices[sender])
        if prices[sender] == 10 + SENDERS.index(sender):  # zero bump floor
            prices[sender] += 1
        pool.add(tx(sender, 0, prices[sender]))
        pool.check_invariants()
    assert pool.compactions > 0
    drained = []
    while pool.has_ready():
        t = pool.pop_best()
        drained.append(t)
        pool.mark_packed(t)
        pool.check_invariants()
    assert sorted(t.gas_price for t in drained) == sorted(prices.values())
    assert {t.sender for t in drained} == set(SENDERS)
