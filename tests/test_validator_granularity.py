"""Conflict-granularity ablation tests (§4.3 design choice)."""

import pytest

from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestGranularity:
    def test_key_level_has_no_fewer_components(self, sealed, small_universe):
        """Key-level footprints split account-level components, never merge
        them (keys refine accounts)."""
        account = ParallelValidator(
            config=ValidatorConfig(granularity="account")
        ).validate_block(sealed.block, small_universe.genesis)
        key = ParallelValidator(
            config=ValidatorConfig(granularity="key")
        ).validate_block(sealed.block, small_universe.genesis)
        assert account.accepted and key.accepted
        assert len(key.graph.components) >= len(account.graph.components)
        assert (
            key.graph.largest_component_ratio()
            <= account.graph.largest_component_ratio()
        )

    def test_key_level_speedup_at_least_account_level(self, sealed, small_universe):
        account = ParallelValidator(
            config=ValidatorConfig(granularity="account", lanes=16)
        ).validate_block(sealed.block, small_universe.genesis)
        key = ParallelValidator(
            config=ValidatorConfig(granularity="key", lanes=16)
        ).validate_block(sealed.block, small_universe.genesis)
        # finer conflicts expose at least as much parallelism
        assert key.speedup >= account.speedup * 0.99

    def test_correctness_independent_of_granularity(self, sealed, small_universe):
        account = ParallelValidator(
            config=ValidatorConfig(granularity="account")
        ).validate_block(sealed.block, small_universe.genesis)
        key = ParallelValidator(
            config=ValidatorConfig(granularity="key")
        ).validate_block(sealed.block, small_universe.genesis)
        assert (
            account.post_state.state_root() == key.post_state.state_root()
        )

    def test_unknown_granularity_rejected(self, sealed, small_universe):
        res = ParallelValidator(
            config=ValidatorConfig(granularity="molecule")
        ).validate_block(sealed.block, small_universe.genesis)
        assert not res.accepted
        assert "granularity" in res.reason
