"""Unit tests for the prefetch/cold-storage model and throughput metric."""

import pytest

from repro.analysis.metrics import throughput_tps
from repro.core.validator import ParallelValidator, ValidatorConfig
from repro.network.node import ProposerNode


@pytest.fixture()
def sealed(small_universe, small_generator, genesis_chain):
    txs = small_generator.generate_block_txs()
    return ProposerNode("alice").build_block(
        genesis_chain.genesis.header, small_universe.genesis, txs
    )


class TestPrefetchModel:
    def test_cold_run_slower_in_absolute_terms(self, sealed, small_universe):
        warm = ParallelValidator(config=ValidatorConfig(prefetch=True))
        cold = ParallelValidator(config=ValidatorConfig(prefetch=False))
        r_warm = warm.validate_block(sealed.block, small_universe.genesis)
        r_cold = cold.validate_block(sealed.block, small_universe.genesis)
        assert r_warm.accepted and r_cold.accepted
        assert r_cold.makespan > r_warm.makespan
        assert sum(r_cold.tx_costs) > sum(r_warm.tx_costs)

    def test_prefetch_cost_lands_in_prep_phase(self, sealed, small_universe):
        warm = ParallelValidator(config=ValidatorConfig(prefetch=True))
        cold = ParallelValidator(config=ValidatorConfig(prefetch=False))
        r_warm = warm.validate_block(sealed.block, small_universe.genesis)
        r_cold = cold.validate_block(sealed.block, small_universe.genesis)
        assert r_warm.prep_cost > r_cold.prep_cost  # prefetch work is in prep

    def test_correctness_independent_of_prefetch(self, sealed, small_universe):
        warm = ParallelValidator(config=ValidatorConfig(prefetch=True))
        cold = ParallelValidator(config=ValidatorConfig(prefetch=False))
        r_warm = warm.validate_block(sealed.block, small_universe.genesis)
        r_cold = cold.validate_block(sealed.block, small_universe.genesis)
        assert (
            r_warm.post_state.state_root() == r_cold.post_state.state_root()
        )

    def test_serial_baseline_also_pays_prefetch(self, sealed, small_universe):
        """The fairness normalisation of §5.4: serial_time includes the
        prefetch cost, so speedup compares like with like."""
        warm = ParallelValidator(config=ValidatorConfig(prefetch=True))
        r = warm.validate_block(sealed.block, small_universe.genesis)
        model = warm.cost_model
        base = (
            sum(r.tx_costs)
            + model.applier_per_tx * len(r.tx_costs)
            + model.block_epilogue
            + model.block_commit
        )
        assert r.serial_time > base  # prefetch cost included


class TestThroughput:
    def test_tps_computation(self):
        assert throughput_tps(132, 1_000_000.0) == 132.0
        assert throughput_tps(132, 500_000.0) == 264.0

    def test_zero_makespan_rejected(self):
        with pytest.raises(ValueError):
            throughput_tps(10, 0.0)

    def test_parallel_execution_raises_tps(self, sealed, small_universe):
        """The paper's bottom line: parallel execution raises the execution
        layer's sustainable transactions-per-second."""
        validator = ParallelValidator(config=ValidatorConfig(lanes=16))
        r = validator.validate_block(sealed.block, small_universe.genesis)
        serial_tps = throughput_tps(len(sealed.block), r.serial_time)
        parallel_tps = throughput_tps(len(sealed.block), r.makespan)
        assert parallel_tps > serial_tps
        assert parallel_tps / serial_tps == pytest.approx(r.speedup)
