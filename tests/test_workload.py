"""Workload layer tests: contracts behave, generator invariants hold."""

import pytest

from repro.common.types import Address
from repro.evm.interpreter import EVM, ExecutionContext
from repro.state.statedb import StateDB
from repro.txpool.transaction import Transaction
from repro.workload.contracts import (
    AIRDROP_REMAINING_SLOT,
    AMM_RESERVE0_SLOT,
    AMM_RESERVE1_SLOT,
    NFT_NEXT_ID_SLOT,
    airdrop_claim_calldata,
    airdrop_claimed_slot,
    amm_swap_calldata,
    erc20_balance_slot,
    erc20_transfer_calldata,
    nft_mint_calldata,
    nft_owner_slot,
)
from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig
from repro.workload.scenarios import (
    era_profile,
    hotspot_scenario,
    mainnet_scenario,
    payment_heavy_scenario,
)

CTX = ExecutionContext(block_number=1, timestamp=1000)


def apply(universe, db, sender, to, data, nonce=None):
    tx = Transaction(
        sender=sender,
        to=to,
        value=0,
        data=data,
        gas_limit=900_000,
        gas_price=0,
        nonce=nonce if nonce is not None else db.get_nonce(sender),
    )
    return EVM().apply_transaction(db, tx, CTX)


class TestERC20:
    def test_transfer_moves_balance(self, small_universe):
        uni = small_universe
        token = uni.tokens[0]
        db = StateDB(uni.genesis)
        sender = next(
            e for e in uni.eoas if db.get_storage(token, erc20_balance_slot(e)) > 0
        )
        receiver = Address.from_int(0x9999)
        before = db.get_storage(token, erc20_balance_slot(sender))
        result = apply(uni, db, sender, token, erc20_transfer_calldata(receiver, 500))
        assert result.success, result.error
        assert db.get_storage(token, erc20_balance_slot(sender)) == before - 500
        assert db.get_storage(token, erc20_balance_slot(receiver)) == 500
        assert len(result.logs) == 1

    def test_transfer_insufficient_reverts(self, small_universe):
        uni = small_universe
        token = uni.tokens[0]
        db = StateDB(uni.genesis)
        pauper = Address.from_int(0x8888)
        db.set_balance(pauper, 10**18)  # has ETH, no tokens
        result = apply(uni, db, pauper, token, erc20_transfer_calldata(uni.eoas[0], 1))
        assert not result.success
        assert result.error == "revert"
        assert db.get_storage(token, erc20_balance_slot(uni.eoas[0])) == \
            uni.genesis.account(token).storage.get(erc20_balance_slot(uni.eoas[0]), 0)

    def test_unknown_selector_reverts(self, small_universe):
        uni = small_universe
        db = StateDB(uni.genesis)
        result = apply(uni, db, uni.eoas[0], uni.tokens[0], b"\x00\x00\x00\x99")
        assert not result.success

    def test_storage_trace_counted(self, small_universe):
        uni = small_universe
        token = uni.tokens[0]
        db = StateDB(uni.genesis)
        sender = next(
            e for e in uni.eoas if db.get_storage(token, erc20_balance_slot(e)) > 0
        )
        result = apply(
            uni, db, sender, token, erc20_transfer_calldata(uni.eoas[1], 10)
        )
        assert result.trace.counts["storage_read"] >= 2
        assert result.trace.counts["storage_write"] == 2
        assert result.trace.counts["sha3"] == 2


class TestAMM:
    def test_swap_updates_reserves_and_mints(self, small_universe):
        uni = small_universe
        pool, _tin, tout = uni.amms[0]
        db = StateDB(uni.genesis)
        sender = uni.eoas[0]
        r0 = db.get_storage(pool, AMM_RESERVE0_SLOT)
        r1 = db.get_storage(pool, AMM_RESERVE1_SLOT)
        amount_in = 10**6
        result = apply(uni, db, sender, pool, amm_swap_calldata(amount_in))
        assert result.success, result.error
        expected_out = (amount_in * r1) // (r0 + amount_in)
        assert db.get_storage(pool, AMM_RESERVE0_SLOT) == r0 + amount_in
        assert db.get_storage(pool, AMM_RESERVE1_SLOT) == r1 - expected_out
        # swapped tokens minted to the caller on the output token
        assert db.get_storage(tout, erc20_balance_slot(sender)) >= expected_out

    def test_zero_input_reverts(self, small_universe):
        uni = small_universe
        pool, _, _ = uni.amms[0]
        db = StateDB(uni.genesis)
        result = apply(uni, db, uni.eoas[0], pool, amm_swap_calldata(0))
        assert not result.success

    def test_swap_traces_inter_contract_call(self, small_universe):
        uni = small_universe
        pool, _, _ = uni.amms[0]
        db = StateDB(uni.genesis)
        result = apply(uni, db, uni.eoas[0], pool, amm_swap_calldata(1000))
        assert result.trace.counts.get("call", 0) == 1


class TestNFT:
    def test_mint_assigns_sequential_ids(self, small_universe):
        uni = small_universe
        nft = uni.nfts[0]
        db = StateDB(uni.genesis)
        first_id = db.get_storage(nft, NFT_NEXT_ID_SLOT)
        r1 = apply(uni, db, uni.eoas[0], nft, nft_mint_calldata())
        r2 = apply(uni, db, uni.eoas[1], nft, nft_mint_calldata())
        assert r1.success and r2.success
        assert db.get_storage(nft, NFT_NEXT_ID_SLOT) == first_id + 2
        assert db.get_storage(nft, nft_owner_slot(first_id)) == uni.eoas[0].to_int()
        assert db.get_storage(nft, nft_owner_slot(first_id + 1)) == uni.eoas[1].to_int()


class TestAirdrop:
    def test_claim_once(self, small_universe):
        uni = small_universe
        drop = uni.airdrops[0]
        db = StateDB(uni.genesis)
        supply = db.get_storage(drop, AIRDROP_REMAINING_SLOT)
        result = apply(uni, db, uni.eoas[0], drop, airdrop_claim_calldata())
        assert result.success, result.error
        assert db.get_storage(drop, AIRDROP_REMAINING_SLOT) == supply - 1
        assert db.get_storage(drop, airdrop_claimed_slot(uni.eoas[0])) == 1

    def test_double_claim_reverts(self, small_universe):
        uni = small_universe
        drop = uni.airdrops[0]
        db = StateDB(uni.genesis)
        apply(uni, db, uni.eoas[0], drop, airdrop_claim_calldata())
        result = apply(uni, db, uni.eoas[0], drop, airdrop_claim_calldata())
        assert not result.success
        assert result.error == "revert"


class TestGenerator:
    def test_tx_count_respected(self, small_universe):
        gen = BlockWorkloadGenerator(
            small_universe, WorkloadConfig(txs_per_block=50, tx_count_jitter=0.0)
        )
        assert len(gen.generate_block_txs()) == 50

    def test_explicit_count_overrides(self, small_generator):
        assert len(small_generator.generate_block_txs(count=7)) == 7

    def test_nonces_in_order_per_sender(self, small_generator):
        txs = small_generator.generate_block_txs(count=200)
        seen = {}
        for tx in txs:
            expected = seen.get(tx.sender, 0)
            assert tx.nonce == expected
            seen[tx.sender] = expected + 1

    def test_all_generated_txs_execute(self, small_universe, small_generator):
        """Every generated tx is valid in generated order (may revert)."""
        txs = small_generator.generate_block_txs(count=120)
        db = StateDB(small_universe.genesis)
        evm = EVM()
        for tx in txs:
            evm.apply_transaction(db, tx, CTX)  # must not raise

    def test_deterministic_by_seed(self, small_universe):
        import dataclasses

        g1 = BlockWorkloadGenerator(
            dataclasses.replace(small_universe, nonces={}), WorkloadConfig(seed=3)
        )
        g2 = BlockWorkloadGenerator(
            dataclasses.replace(small_universe, nonces={}), WorkloadConfig(seed=3)
        )
        assert [t.hash for t in g1.generate_block_txs()] == [
            t.hash for t in g2.generate_block_txs()
        ]

    def test_mix_tags_present(self, small_generator):
        txs = small_generator.generate_block_txs(count=300)
        tags = {t.tag for t in txs}
        assert {"payment", "erc20", "amm", "nft", "airdrop"} <= tags

    def test_deploy_txs_generated_and_valid(self, small_universe):
        import dataclasses

        from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig

        uni = dataclasses.replace(small_universe, nonces={})
        gen = BlockWorkloadGenerator(
            uni, WorkloadConfig(deploy_fraction=0.3, seed=4)
        )
        txs = gen.generate_block_txs(count=60)
        deploys = [t for t in txs if t.tag == "deploy"]
        assert deploys
        assert all(t.to is None for t in deploys)
        # the deployments execute and leave real contract code behind
        db = StateDB(uni.genesis)
        evm = EVM()
        created = []
        for tx in txs:
            result = evm.apply_transaction(db, tx, CTX)
            if tx.tag == "deploy":
                assert result.success, result.error
                created.append(result.created)
        assert all(db.get_code(addr) for addr in created)
        # distinct sender/nonce pairs -> distinct addresses
        assert len(set(created)) == len(created)

    def test_deploy_blocks_round_trip_proposer_validator(self, small_universe):
        """CREATE transactions flow through OCC-WSI, the profile and the
        validator — code-write keys included."""
        import dataclasses

        from repro.core.validator import ParallelValidator
        from repro.network.node import ProposerNode
        from repro.chain.blockchain import Blockchain
        from repro.workload.generator import BlockWorkloadGenerator, WorkloadConfig

        uni = dataclasses.replace(small_universe, nonces={})
        gen = BlockWorkloadGenerator(uni, WorkloadConfig(deploy_fraction=0.2, seed=9))
        txs = gen.generate_block_txs(count=40)
        assert any(t.tag == "deploy" for t in txs)
        chain = Blockchain(uni.genesis)
        sealed = ProposerNode("alice").build_block(
            chain.genesis.header, uni.genesis, txs
        )
        assert len(sealed.block) == len(txs)
        res = ParallelValidator().validate_block(sealed.block, uni.genesis)
        assert res.accepted, res.reason

    def test_hotspot_intensity_increases_concentration(self, small_universe):
        import dataclasses

        def hot_share(intensity):
            uni = dataclasses.replace(small_universe, nonces={})
            gen = BlockWorkloadGenerator(
                uni, WorkloadConfig(hotspot_intensity=intensity, seed=2)
            )
            txs = gen.generate_block_txs(count=400)
            erc = [t for t in txs if t.tag == "erc20"]
            hot = [t for t in erc if t.to == uni.tokens[0]]
            return len(hot) / len(erc)

        assert hot_share(0.9) > hot_share(0.1)


class TestScenarios:
    def test_scenarios_are_valid_configs(self):
        for cfg in (
            mainnet_scenario(),
            payment_heavy_scenario(),
            hotspot_scenario(0.3),
        ):
            assert abs(sum(cfg.weights()) - 1.0) < 0.2

    def test_hotspot_scenario_bounds(self):
        with pytest.raises(ValueError):
            hotspot_scenario(1.5)

    def test_era_profile_interpolates(self):
        early = era_profile(0)
        late = era_profile(10_000_000)
        mid = era_profile(5_000_000)
        assert early.w_payment > mid.w_payment > late.w_payment
        assert early.hotspot_intensity < mid.hotspot_intensity < late.hotspot_intensity


@pytest.mark.scenarios
class TestGeneratorEdgeCases:
    """Degenerate shapes the scenario engine can reach: empty families,
    single-account universes, zeroed knobs, mid-stream config swaps."""

    def _bare_universe(self, n_eoas=4):
        from repro.workload.universe import UniverseConfig, build_universe

        return build_universe(
            UniverseConfig(
                n_eoas=n_eoas, n_tokens=0, n_amms=0, n_nfts=0, n_airdrops=0
            )
        )

    def test_weights_order_matches_kinds(self):
        cfg = WorkloadConfig(
            w_payment=1, w_erc20=2, w_amm=3, w_nft=4, w_airdrop=5
        )
        assert cfg.weights() == [1, 2, 3, 4, 5]

    def test_negative_weight_rejected(self, small_universe):
        with pytest.raises(ValueError, match="non-negative"):
            BlockWorkloadGenerator(small_universe, WorkloadConfig(w_amm=-0.1))

    def test_universe_without_eoas_rejected(self):
        import dataclasses

        from repro.workload.universe import UniverseConfig, build_universe

        with pytest.raises(ValueError):
            build_universe(UniverseConfig(n_eoas=0))
        # a hand-mutilated universe is caught by the generator itself
        crippled = dataclasses.replace(self._bare_universe(), eoas=[])
        with pytest.raises(ValueError, match="no EOAs"):
            BlockWorkloadGenerator(crippled)

    def test_amm_without_tokens_rejected(self):
        from repro.workload.universe import UniverseConfig, build_universe

        with pytest.raises(ValueError):
            build_universe(UniverseConfig(n_eoas=4, n_tokens=0, n_amms=1))

    def test_empty_effective_mix_rejected(self):
        # payments zeroed + every contract family undeployed = nothing
        # left to sample; this used to IndexError deep inside sampling
        with pytest.raises(ValueError, match="mix is empty"):
            BlockWorkloadGenerator(
                self._bare_universe(), WorkloadConfig(w_payment=0.0)
            )

    def test_deploy_only_mix_is_legal(self):
        gen = BlockWorkloadGenerator(
            self._bare_universe(),
            WorkloadConfig(w_payment=0.0, deploy_fraction=1.0),
        )
        txs = gen.generate_block_txs(count=10)
        assert [t.tag for t in txs] == ["deploy"] * 10

    def test_missing_families_are_zeroed_not_fatal(self):
        # default config weights every kind, but only payments exist
        gen = BlockWorkloadGenerator(self._bare_universe())
        txs = gen.generate_block_txs(count=30)
        assert {t.tag for t in txs} == {"payment"}

    def test_single_account_universe(self):
        uni = self._bare_universe(n_eoas=1)
        gen = BlockWorkloadGenerator(uni, WorkloadConfig(tx_count_jitter=0.0))
        txs = gen.generate_block_txs(count=12)
        only = uni.eoas[0]
        assert all(t.sender == only and t.to == only for t in txs)
        assert [t.nonce for t in txs] == list(range(12))

    def test_pick_hot_or_uniform_empty_family_raises(self, small_generator):
        with pytest.raises(ValueError, match="no deployed instances"):
            small_generator._pick_hot_or_uniform([])

    def test_pick_hot_or_uniform_single_instance(self, small_universe):
        gen = BlockWorkloadGenerator(
            small_universe, WorkloadConfig(hotspot_intensity=0.0)
        )
        assert gen._pick_hot_or_uniform(["only"]) == "only"

    def test_zero_hotspot_intensity_skips_the_hotspot(self, small_universe):
        gen = BlockWorkloadGenerator(
            small_universe,
            WorkloadConfig(hotspot_intensity=0.0, w_erc20=1.0, w_payment=0.0,
                           w_amm=0.0, w_nft=0.0, w_airdrop=0.0),
        )
        txs = gen.generate_block_txs(count=200)
        targets = {t.to for t in txs}
        assert small_universe.tokens[0] not in targets
        assert len(targets) == len(small_universe.tokens) - 1

    def test_config_swap_rebinds_mix_without_reseeding(self, small_generator):
        small_generator.generate_block_txs(count=20)
        rng_state = small_generator.rng.getstate()
        small_generator.config = WorkloadConfig(
            w_payment=1.0, w_erc20=0.0, w_amm=0.0, w_nft=0.0, w_airdrop=0.0,
            receiver_skew=2.5,
        )
        assert small_generator.rng.getstate() == rng_state
        txs = small_generator.generate_block_txs(count=20)
        assert {t.tag for t in txs} == {"payment"}

    def test_config_swap_rejects_bad_mix_and_keeps_old(self, small_generator):
        before = small_generator.config
        with pytest.raises(ValueError):
            small_generator.config = WorkloadConfig(w_payment=-1.0)
        assert small_generator.config is before
        assert small_generator.generate_block_txs(count=5)
