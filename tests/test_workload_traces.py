"""Trace serialization round-trip and replay-equivalence tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.types import Address
from repro.txpool.transaction import Transaction
from repro.workload.traces import (
    TraceError,
    dump_trace,
    load_trace,
    load_trace_file,
    save_trace_file,
)


def tx(sender=1, to=2, value=0, data=b"", nonce=0, price=10, tag=""):
    return Transaction(
        Address.from_int(sender),
        Address.from_int(to) if to is not None else None,
        value,
        data,
        60_000,
        price,
        nonce,
        tag=tag,
    )


class TestRoundTrip:
    def test_simple(self):
        blocks = [[tx(), tx(nonce=1)], [tx(sender=3)]]
        assert load_trace(dump_trace(blocks)) == blocks

    def test_create_tx(self):
        blocks = [[tx(to=None, data=b"\x60\x00")]]
        loaded = load_trace(dump_trace(blocks))
        assert loaded[0][0].to is None
        assert loaded == blocks

    def test_huge_value_preserved(self):
        blocks = [[tx(value=2**200)]]
        assert load_trace(dump_trace(blocks))[0][0].value == 2**200

    def test_tag_preserved(self):
        blocks = [[tx(tag="erc20")]]
        assert load_trace(dump_trace(blocks))[0][0].tag == "erc20"

    def test_file_round_trip(self, tmp_path):
        blocks = [[tx(), tx(sender=5, data=b"\x01\x02")]]
        path = str(tmp_path / "trace.json")
        save_trace_file(path, blocks, note="unit test")
        assert load_trace_file(path) == blocks

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.builds(
                    tx,
                    sender=st.integers(1, 50),
                    to=st.one_of(st.none(), st.integers(1, 50)),
                    value=st.integers(0, 2**256 - 1),
                    data=st.binary(max_size=40),
                    nonce=st.integers(0, 100),
                    price=st.integers(0, 500),
                ),
                max_size=5,
            ),
            max_size=4,
        )
    )
    def test_property_round_trip(self, blocks):
        assert load_trace(dump_trace(blocks)) == blocks


class TestValidation:
    def test_garbage_rejected(self):
        with pytest.raises(TraceError):
            load_trace("not json {")

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(TraceError):
            load_trace('{"format": "something-else", "version": 1, "blocks": []}')

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceError):
            load_trace('{"format": "repro-workload-trace", "version": 99, "blocks": []}')

    def test_missing_blocks_rejected(self):
        with pytest.raises(TraceError):
            load_trace('{"format": "repro-workload-trace", "version": 1}')

    def test_bad_tx_record_rejected(self):
        doc = (
            '{"format": "repro-workload-trace", "version": 1,'
            ' "blocks": [[{"sender": "zz"}]]}'
        )
        with pytest.raises(TraceError):
            load_trace(doc)


class TestReplayEquivalence:
    def test_recorded_trace_reproduces_block(
        self, small_universe, small_generator, genesis_chain, tmp_path
    ):
        """Record a generated workload, reload it, and verify the proposer
        produces the identical block (hash-for-hash) from the replay."""
        from repro.network.node import ProposerNode
        from repro.workload.traces import load_trace_file, save_trace_file

        txs = small_generator.generate_block_txs()
        path = str(tmp_path / "blocks.json")
        save_trace_file(path, [txs])
        replayed = load_trace_file(path)[0]

        node = ProposerNode("rec")
        sealed_live = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, txs
        )
        sealed_replay = node.build_block(
            genesis_chain.genesis.header, small_universe.genesis, replayed
        )
        assert sealed_live.block.hash == sealed_replay.block.hash
